//! Property-based verification of the algebraic laws claimed in Section 2 of the paper:
//! (semi)ring axioms for the coefficient rings, ring axioms for monoid rings `A[G]`
//! (Proposition 2.4), module axioms for the scalar action (Proposition 2.15), delta laws
//! for polynomials (Example 1.1), and the recursive memoization invariant of Section 1.1.

use dbring_algebra::monoid::NatAdd;
use dbring_algebra::mutilate::restrict;
use dbring_algebra::{MonoidRing, Polynomial, Rational, RecursiveMemo, Ring, Semiring};
use proptest::prelude::*;

type Poly = MonoidRing<i64, NatAdd>;

fn arb_rational() -> impl Strategy<Value = Rational> {
    (-50i64..50, 1i64..20).prop_map(|(n, d)| Rational::new(n, d))
}

fn arb_poly() -> impl Strategy<Value = Poly> {
    prop::collection::vec((0u32..6, -20i64..20), 0..6)
        .prop_map(|pairs| Poly::from_pairs(pairs.into_iter().map(|(k, c)| (NatAdd(k), c))))
}

fn arb_dense_poly() -> impl Strategy<Value = Polynomial<i64>> {
    prop::collection::vec(-10i64..10, 0..5).prop_map(Polynomial::new)
}

proptest! {
    // ---------- coefficient rings ----------

    #[test]
    fn i64_ring_axioms(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.add(&Ring::neg(&a)), 0);
        prop_assert_eq!(a.mul(&<i64 as Semiring>::one()), a);
        prop_assert_eq!(a.mul(&<i64 as Semiring>::zero()), 0);
    }

    #[test]
    fn rational_ring_axioms(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert!(a.sub(&a).is_zero());
        prop_assert_eq!(a.mul(&Rational::one()), a);
    }

    // ---------- monoid rings A[G] (Proposition 2.4) ----------

    #[test]
    fn monoid_ring_addition_is_commutative_group(p in arb_poly(), q in arb_poly(), r in arb_poly()) {
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
        prop_assert_eq!(p.add(&Poly::zero()), p.clone());
        prop_assert!(p.add(&p.neg()).is_zero());
    }

    #[test]
    fn monoid_ring_multiplication_is_monoid(p in arb_poly(), q in arb_poly(), r in arb_poly()) {
        prop_assert_eq!(p.mul(&q).mul(&r), p.mul(&q.mul(&r)));
        prop_assert_eq!(p.mul(&Poly::one()), p.clone());
        prop_assert_eq!(Poly::one().mul(&p), p.clone());
        prop_assert!(p.mul(&Poly::zero()).is_zero());
    }

    #[test]
    fn monoid_ring_distributivity(p in arb_poly(), q in arb_poly(), r in arb_poly()) {
        prop_assert_eq!(p.mul(&q.add(&r)), p.mul(&q).add(&p.mul(&r)));
        prop_assert_eq!(p.add(&q).mul(&r), p.mul(&r).add(&q.mul(&r)));
    }

    #[test]
    fn monoid_ring_commutative_when_monoid_is(p in arb_poly(), q in arb_poly()) {
        // Proposition 2.4(3): NatAdd is commutative, hence so is A[NatAdd].
        prop_assert_eq!(p.mul(&q), q.mul(&p));
    }

    // ---------- module structure (Proposition 2.15) ----------

    #[test]
    fn module_axioms(p in arb_poly(), q in arb_poly(), a in -20i64..20, b in -20i64..20) {
        prop_assert_eq!(p.scale(&(a + b)), p.scale(&a).add(&p.scale(&b)));
        prop_assert_eq!(p.scale(&(a * b)), p.scale(&b).scale(&a));
        prop_assert_eq!(p.add(&q).scale(&a), p.scale(&a).add(&q.scale(&a)));
        prop_assert_eq!(p.scale(&1), p.clone());
        // Bilinearity of the convolution product (Proposition 2.15(2)).
        prop_assert_eq!(p.scale(&a).mul(&q), p.mul(&q).scale(&a));
        prop_assert_eq!(p.mul(&q.scale(&a)), p.mul(&q).scale(&a));
    }

    // ---------- mutilation (Lemma 2.9) ----------

    #[test]
    fn restriction_is_additive_and_multiplicative(p in arb_poly(), q in arb_poly(), bound in 0u32..8) {
        let in_g0 = |g: &NatAdd| g.0 <= bound;
        // Additive homomorphism.
        prop_assert_eq!(
            restrict(&p.add(&q), in_g0),
            restrict(&p, in_g0).add(&restrict(&q, in_g0))
        );
        // Multiplicative homomorphism *into the quotient*: the product of the projections,
        // re-projected, equals the projection of the product. (Downward closure of
        // `exponent <= bound` under addition of naturals makes this hold.)
        prop_assert_eq!(
            restrict(&p.mul(&q), in_g0),
            restrict(&restrict(&p, in_g0).mul(&restrict(&q, in_g0)), in_g0)
        );
    }

    // ---------- polynomial deltas (Example 1.1) ----------

    #[test]
    fn polynomial_delta_equation(f in arb_dense_poly(), x in -30i64..30, u in -5i64..5) {
        // f(x + u) = f(x) + ∆f(x, u)
        prop_assert_eq!(f.eval(&(x + u)), f.eval(&x) + f.delta(&u).eval(&x));
    }

    #[test]
    fn polynomial_delta_reduces_degree(f in arb_dense_poly(), u in -5i64..5) {
        if u != 0 {
            match f.degree() {
                None | Some(0) => prop_assert!(f.delta(&u).is_zero()),
                Some(d) => {
                    let dd = f.delta(&u).degree();
                    prop_assert!(dd.is_none() || dd.unwrap() < d);
                }
            }
        }
    }

    #[test]
    fn kth_delta_vanishes(f in arb_dense_poly(), us in prop::collection::vec(-3i64..4, 5)) {
        // For degree <= 4 polynomials, the 5th delta is identically zero.
        prop_assert!(f.iterated_delta(&us).is_zero());
    }

    // ---------- recursive memoization (Section 1.1, Equation (1)) ----------

    #[test]
    fn recursive_memo_tracks_function_exactly(
        f in arb_dense_poly(),
        x0 in -10i64..10,
        walk in prop::collection::vec(0usize..3, 0..25),
    ) {
        let updates = vec![1i64, -1, 2];
        let mut memo = RecursiveMemo::new(&f, &x0, updates.clone());
        let mut x = x0;
        for &step in &walk {
            memo.apply(step);
            x += updates[step];
        }
        prop_assert_eq!(memo.current(), f.eval(&x));
    }

    #[test]
    fn recursive_memo_work_is_constant_per_update(
        f in arb_dense_poly(),
        walk in prop::collection::vec(0usize..2, 1..20),
    ) {
        let updates = vec![1i64, -1];
        let mut memo = RecursiveMemo::new(&f, &0, updates);
        let per_update: u64 = memo
            .snapshot()
            .iter()
            .filter(|(idx, _)| idx.len() + 1 < memo.order())
            .count() as u64;
        for &step in &walk {
            memo.apply(step);
        }
        // Exactly `per_update` additions per applied update, independent of the walk.
        prop_assert_eq!(memo.additions(), per_update * walk.len() as u64);
    }
}

// ---------- avalanche semirings (Definition 2.5, Theorem 2.6) ----------

mod avalanche_axioms {
    use dbring_algebra::monoid::NatAdd;
    use dbring_algebra::{Avalanche, MonoidRing};
    use proptest::prelude::*;

    type Poly = MonoidRing<i64, NatAdd>;
    type Av = Avalanche<i64, NatAdd>;

    /// A small symbolic description of an avalanche element, so proptest can generate and
    /// shrink them (closures themselves cannot be generated directly).
    #[derive(Clone, Debug)]
    enum Description {
        Constant(Vec<(u32, i64)>),
        /// Returns χ_{b} scaled by (coefficient + b): genuinely context-sensitive.
        ContextScaled(i64),
        /// Returns the constant on even bindings and zero on odd ones.
        Parity(Vec<(u32, i64)>),
    }

    fn realize(description: &Description) -> Av {
        match description.clone() {
            Description::Constant(pairs) => Avalanche::lift(Poly::from_pairs(
                pairs.into_iter().map(|(k, c)| (NatAdd(k), c)),
            )),
            Description::ContextScaled(coefficient) => {
                Avalanche::new(move |b: &NatAdd| Poly::singleton(*b, coefficient + b.0 as i64))
            }
            Description::Parity(pairs) => Avalanche::new(move |b: &NatAdd| {
                if b.0 % 2 == 0 {
                    Poly::from_pairs(pairs.clone().into_iter().map(|(k, c)| (NatAdd(k), c)))
                } else {
                    Poly::zero()
                }
            }),
        }
    }

    fn arb_description() -> impl Strategy<Value = Description> {
        let pairs = prop::collection::vec((0u32..4, -5i64..6), 0..4);
        prop_oneof![
            pairs.clone().prop_map(Description::Constant),
            (-5i64..6).prop_map(Description::ContextScaled),
            pairs.prop_map(Description::Parity),
        ]
    }

    fn assert_pointwise_eq(left: &Av, right: &Av) -> Result<(), TestCaseError> {
        for b in (0..6).map(NatAdd) {
            prop_assert_eq!(left.at(&b), right.at(&b), "differ at binding {:?}", b);
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn avalanche_ring_axioms(
            fd in arb_description(),
            gd in arb_description(),
            hd in arb_description(),
        ) {
            let (f, g, h) = (realize(&fd), realize(&gd), realize(&hd));
            // Additive commutative group (pointwise).
            assert_pointwise_eq(&f.add(&g), &g.add(&f))?;
            assert_pointwise_eq(&f.add(&g).add(&h), &f.add(&g.add(&h)))?;
            assert_pointwise_eq(&f.add(&Av::zero()), &f)?;
            assert_pointwise_eq(&f.sub(&f), &Av::zero())?;
            // Multiplicative monoid with sideways binding passing.
            assert_pointwise_eq(&f.mul(&g).mul(&h), &f.mul(&g.mul(&h)))?;
            assert_pointwise_eq(&Av::one().mul(&f), &f)?;
            assert_pointwise_eq(&f.mul(&Av::one()), &f)?;
            assert_pointwise_eq(&f.mul(&Av::zero()), &Av::zero())?;
            // Distributivity on both sides.
            assert_pointwise_eq(&f.mul(&g.add(&h)), &f.mul(&g).add(&f.mul(&h)))?;
            assert_pointwise_eq(&f.add(&g).mul(&h), &f.mul(&h).add(&g.mul(&h)))?;
        }

        #[test]
        fn lifting_is_a_ring_homomorphism(
            alpha in prop::collection::vec((0u32..4, -5i64..6), 0..4),
            beta in prop::collection::vec((0u32..4, -5i64..6), 0..4),
        ) {
            // Proposition 2.8: the parameter-ignoring functions form a sub-ring isomorphic
            // to A[G].
            let a = Poly::from_pairs(alpha.into_iter().map(|(k, c)| (NatAdd(k), c)));
            let b = Poly::from_pairs(beta.into_iter().map(|(k, c)| (NatAdd(k), c)));
            assert_pointwise_eq(&Av::lift(a.clone()).mul(&Av::lift(b.clone())), &Av::lift(a.mul(&b)))?;
            assert_pointwise_eq(&Av::lift(a.clone()).add(&Av::lift(b.clone())), &Av::lift(a.add(&b)))?;
            assert_pointwise_eq(&Av::lift(a.neg()), &Av::lift(a).neg())?;
        }
    }
}
