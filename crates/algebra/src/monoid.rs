//! Monoids and partial monoids: the index structures `G` of monoid rings `A[G]`.
//!
//! The paper builds monoid rings over a monoid `G` (Definition 2.3) and then removes
//! ("mutilates", Section 2.4) a downward-closed set of elements — in the database case,
//! the zero `∅` of the singleton-join monoid — by quotienting with the induced ideal.
//! Operationally the quotient `A[G₀]` is a monoid-ring-like structure whose product simply
//! *drops* contributions whose index lands outside `G₀`. We capture exactly that with
//! [`PartialMonoid`]: a monoid whose `combine` may fail. A total [`Monoid`] is a
//! `PartialMonoid` whose `combine` always succeeds (blanket impl).

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;

/// A monoid `(G, ∗, 1)`.
pub trait Monoid: Clone + Eq + Hash + Debug {
    /// The neutral element `1_G`.
    fn unit() -> Self;
    /// The (total, associative) monoid operation.
    fn combine(&self, other: &Self) -> Self;
}

/// A "mutilated" monoid `G₀ ⊆ G`: the operation is inherited from `G` but combinations
/// that fall outside `G₀` are reported as `None` (Section 2.4).
///
/// Monoid rings built over a `PartialMonoid` are exactly the quotient rings
/// `A[G]/I_{A[G],G₀}` of Lemma 2.9: the dropped products are the elements of the ideal.
pub trait PartialMonoid: Clone + Eq + Hash + Debug {
    /// The neutral element; must satisfy `try_combine(partial_unit, g) = Some(g)` for every
    /// `g ∈ G₀`.
    fn partial_unit() -> Self;
    /// The partial operation: `None` means the product falls outside the downward-closed
    /// complement `G₀` (e.g. an inconsistent tuple join).
    fn try_combine(&self, other: &Self) -> Option<Self>;
}

impl<M: Monoid> PartialMonoid for M {
    fn partial_unit() -> Self {
        <M as Monoid>::unit()
    }
    fn try_combine(&self, other: &Self) -> Option<Self> {
        Some(<M as Monoid>::combine(self, other))
    }
}

/// The additive monoid of natural-number exponents `(ℕ, +, 0)`.
///
/// `A[NatAdd]` is the univariate polynomial ring `A[x]` — the structure behind
/// Example 1.1 and Figure 1 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NatAdd(pub u32);

impl Monoid for NatAdd {
    fn unit() -> Self {
        NatAdd(0)
    }
    fn combine(&self, other: &Self) -> Self {
        NatAdd(self.0 + other.0)
    }
}

/// A multivariate exponent vector: a finitely supported map from variable names to
/// positive exponents. `A[MultiDegree]` is the multivariate polynomial ring
/// `A[x₁, x₂, …]`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MultiDegree(BTreeMap<String, u32>);

impl MultiDegree {
    /// The exponent vector of a single variable `x^1`.
    pub fn var(name: impl Into<String>) -> Self {
        let mut m = BTreeMap::new();
        m.insert(name.into(), 1);
        MultiDegree(m)
    }

    /// The exponent vector `x^k`.
    pub fn var_pow(name: impl Into<String>, k: u32) -> Self {
        let mut m = BTreeMap::new();
        if k > 0 {
            m.insert(name.into(), k);
        }
        MultiDegree(m)
    }

    /// Total degree (sum of exponents).
    pub fn total_degree(&self) -> u32 {
        self.0.values().sum()
    }

    /// The exponent of `name` (0 if absent).
    pub fn exponent(&self, name: &str) -> u32 {
        self.0.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(variable, exponent)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.0.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl Monoid for MultiDegree {
    fn unit() -> Self {
        MultiDegree(BTreeMap::new())
    }
    fn combine(&self, other: &Self) -> Self {
        let mut out = self.0.clone();
        for (k, v) in &other.0 {
            *out.entry(k.clone()).or_insert(0) += v;
        }
        MultiDegree(out)
    }
}

/// The free (word) monoid over an alphabet `T`: concatenation of sequences.
///
/// This is the canonical *non-commutative* monoid; it exists to exercise the
/// non-commutative code paths of [`MonoidRing`](crate::MonoidRing) in tests
/// (Proposition 2.4(3) only promises commutativity of `A[G]` when `G` commutes).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FreeMonoid<T: Clone + Eq + Hash + Debug + Ord>(pub Vec<T>);

impl<T: Clone + Eq + Hash + Debug + Ord> FreeMonoid<T> {
    /// The single-letter word.
    pub fn letter(t: T) -> Self {
        FreeMonoid(vec![t])
    }
}

impl<T: Clone + Eq + Hash + Debug + Ord> Monoid for FreeMonoid<T> {
    fn unit() -> Self {
        FreeMonoid(Vec::new())
    }
    fn combine(&self, other: &Self) -> Self {
        let mut v = self.0.clone();
        v.extend(other.0.iter().cloned());
        FreeMonoid(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_add_is_a_monoid() {
        assert_eq!(NatAdd::unit(), NatAdd(0));
        assert_eq!(NatAdd(2).combine(&NatAdd(3)), NatAdd(5));
        // associativity on a few values
        let (a, b, c) = (NatAdd(1), NatAdd(4), NatAdd(7));
        assert_eq!(a.combine(&b).combine(&c), a.combine(&b.combine(&c)));
    }

    #[test]
    fn total_monoid_is_partial_monoid() {
        // The blanket impl never fails.
        let r: Option<NatAdd> = NatAdd(1).try_combine(&NatAdd(2));
        assert_eq!(r, Some(NatAdd(3)));
        assert_eq!(<NatAdd as PartialMonoid>::partial_unit(), NatAdd(0));
    }

    #[test]
    fn multidegree_combines_exponents() {
        let x2 = MultiDegree::var_pow("x", 2);
        let xy = MultiDegree::var("x").combine(&MultiDegree::var("y"));
        let prod = x2.combine(&xy);
        assert_eq!(prod.exponent("x"), 3);
        assert_eq!(prod.exponent("y"), 1);
        assert_eq!(prod.exponent("z"), 0);
        assert_eq!(prod.total_degree(), 4);
        assert_eq!(MultiDegree::unit().total_degree(), 0);
        assert_eq!(MultiDegree::var_pow("x", 0), MultiDegree::unit());
    }

    #[test]
    fn multidegree_is_commutative() {
        let a = MultiDegree::var("x");
        let b = MultiDegree::var_pow("y", 3);
        assert_eq!(a.combine(&b), b.combine(&a));
    }

    #[test]
    fn free_monoid_is_not_commutative() {
        let ab = FreeMonoid::letter('a').combine(&FreeMonoid::letter('b'));
        let ba = FreeMonoid::letter('b').combine(&FreeMonoid::letter('a'));
        assert_ne!(ab, ba);
        assert_eq!(ab, FreeMonoid(vec!['a', 'b']));
        assert_eq!(
            FreeMonoid::<char>::unit().combine(&ab),
            ab.combine(&FreeMonoid::unit())
        );
    }
}
