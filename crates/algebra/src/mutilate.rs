//! "Mutilating the monoids" (Section 2.4): quotients of `A[G]` induced by a
//! downward-closed subset `G₀ ⊆ G`.
//!
//! Operationally there are two faces of the construction:
//!
//! 1. **Partial monoids.** Building [`MonoidRing`] directly over a [`PartialMonoid`] whose
//!    `try_combine` returns `None` outside `G₀` *is* the quotient ring `A[G₀] = A[G]/I`:
//!    the convolution product silently drops the contributions that the ideal `I` would
//!    absorb. The database instantiation (removing the zero `∅` from the join monoid of
//!    singletons, Proposition 3.3) works this way.
//! 2. **The natural projection.** [`restrict`] is the ring homomorphism
//!    `φ_{A[G],G₀} : A[G] → A[G₀]` of Lemma 2.9(1): it forgets all coefficients outside
//!    `G₀`. Its kernel is the ideal `I_{A[G],G₀}` (Lemma 2.11), and the homomorphism
//!    property is exercised by the property tests of this crate.
//!
//! [`BoundedNat`] is a worked example of a mutilated monoid: truncating the exponent
//! monoid `(ℕ, +)` at a bound `B` yields the ring of truncated polynomials
//! `A[x]/(x^{B+1})`.

use crate::monoid::{Monoid, PartialMonoid};
use crate::monoid_ring::MonoidRing;
use crate::semiring::Semiring;

/// The natural projection `φ_{A[G],G₀}` of Lemma 2.9(1): keeps only the coefficients whose
/// index satisfies `in_g0` and drops the rest.
///
/// For a downward-closed `G₀` this is a (semi)ring homomorphism onto the quotient
/// `A[G]/I_{A[G],G₀}`; for an arbitrary predicate it is merely an additive-monoid
/// homomorphism. Whether the predicate is downward-closed is the caller's obligation
/// (see [`is_downward_closed_on`] for a finite-sample check used in tests).
pub fn restrict<A: Semiring, G: PartialMonoid>(
    alpha: &MonoidRing<A, G>,
    in_g0: impl Fn(&G) -> bool,
) -> MonoidRing<A, G> {
    MonoidRing::from_pairs(
        alpha
            .iter()
            .filter(|(g, _)| in_g0(g))
            .map(|(g, a)| (g.clone(), a.clone())),
    )
}

/// Checks the downward-closure condition `g ∗ h ∈ G₀ ⇒ g, h ∈ G₀` on all pairs drawn from
/// a finite sample of monoid elements. Intended for tests and documentation examples; it
/// is *not* a proof for infinite monoids.
pub fn is_downward_closed_on<G: Monoid>(sample: &[G], in_g0: impl Fn(&G) -> bool) -> bool {
    for g in sample {
        for h in sample {
            let prod = g.combine(h);
            if in_g0(&prod) && (!in_g0(g) || !in_g0(h)) {
                return false;
            }
        }
    }
    true
}

/// The exponent monoid `(ℕ, +)` truncated at `B`: combination fails when the sum of
/// exponents exceeds `B`.
///
/// `MonoidRing<A, BoundedNat<B>>` is the truncated polynomial ring `A[x]/(x^{B+1})`, the
/// textbook example of the quotient construction of Section 2.4.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BoundedNat<const B: u32>(pub u32);

impl<const B: u32> PartialMonoid for BoundedNat<B> {
    fn partial_unit() -> Self {
        BoundedNat(0)
    }
    fn try_combine(&self, other: &Self) -> Option<Self> {
        let sum = self.0 + other.0;
        if sum <= B {
            Some(BoundedNat(sum))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::NatAdd;

    type Poly = MonoidRing<i64, NatAdd>;
    type TruncPoly = MonoidRing<i64, BoundedNat<2>>;

    #[test]
    fn bounded_exponents_are_downward_closed() {
        // On plain NatAdd, the predicate "value <= 2" is downward closed.
        let sample: Vec<NatAdd> = (0..6).map(NatAdd).collect();
        assert!(is_downward_closed_on(&sample, |g| g.0 <= 2));
        // "value is even" is not downward closed: 1 + 1 = 2 is even but 1 is not.
        assert!(!is_downward_closed_on(&sample, |g| g.0 % 2 == 0));
    }

    #[test]
    fn truncated_polynomials_drop_high_powers() {
        // (1 + x)^3 in A[x]/(x^3) = 1 + 3x + 3x^2   (the x^3 term is annihilated)
        let one_plus_x = TruncPoly::one().add(&TruncPoly::singleton(BoundedNat(1), 1));
        let cube = one_plus_x.mul(&one_plus_x).mul(&one_plus_x);
        assert_eq!(cube.get(&BoundedNat(0)), 1);
        assert_eq!(cube.get(&BoundedNat(1)), 3);
        assert_eq!(cube.get(&BoundedNat(2)), 3);
        assert_eq!(cube.support_size(), 3);
    }

    #[test]
    fn restriction_is_the_natural_projection() {
        let p = Poly::from_pairs(vec![(NatAdd(0), 1), (NatAdd(1), 2), (NatAdd(5), 7)]);
        let projected = restrict(&p, |g| g.0 <= 2);
        assert_eq!(projected.get(&NatAdd(0)), 1);
        assert_eq!(projected.get(&NatAdd(1)), 2);
        assert_eq!(projected.get(&NatAdd(5)), 0);
        assert_eq!(projected.support_size(), 2);
    }

    #[test]
    fn restriction_commutes_with_multiplication_for_downward_closed_sets() {
        // φ(α ∗ β) = φ(α) ∗ φ(β) computed in the quotient; we verify the instance by
        // comparing against the truncated-polynomial ring.
        let in_g0 = |g: &NatAdd| g.0 <= 2;
        let a = Poly::from_pairs(vec![(NatAdd(0), 1), (NatAdd(1), 1)]);
        let b = Poly::from_pairs(vec![(NatAdd(1), 2), (NatAdd(2), 3)]);
        let lhs = restrict(&a.mul(&b), in_g0);

        // Compute the same product in A[x]/(x^3).
        let ta = TruncPoly::from_pairs(a.iter().map(|(g, c)| (BoundedNat::<2>(g.0), *c)));
        let tb = TruncPoly::from_pairs(b.iter().map(|(g, c)| (BoundedNat::<2>(g.0), *c)));
        let rhs = ta.mul(&tb);

        for k in 0..=2u32 {
            assert_eq!(lhs.get(&NatAdd(k)), rhs.get(&BoundedNat(k)), "power {k}");
        }
    }

    #[test]
    fn kernel_elements_multiply_into_the_kernel() {
        // Lemma 2.11: I is an ideal — r * i stays in the kernel of φ.
        let in_g0 = |g: &NatAdd| g.0 <= 1;
        // i is supported only outside G0 (powers >= 2), hence in the kernel.
        let i = Poly::from_pairs(vec![(NatAdd(2), 5), (NatAdd(4), -1)]);
        assert!(restrict(&i, in_g0).is_zero());
        let r = Poly::from_pairs(vec![(NatAdd(0), 3), (NatAdd(1), 2), (NatAdd(3), 9)]);
        assert!(restrict(&r.mul(&i), in_g0).is_zero());
        assert!(restrict(&i.mul(&r), in_g0).is_zero());
    }
}
