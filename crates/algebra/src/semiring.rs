//! Semirings and rings (Definition 2.1 of the paper) and their standard instances.
//!
//! A *semiring* `(A, +, ∗, 0, 1)` has a commutative additive monoid, a multiplicative
//! monoid, distributivity, and `0` annihilating under `∗`. A *ring with identity*
//! additionally has additive inverses. The delta-processing machinery of the paper
//! needs the additive inverse (deletions are insertions with negative multiplicity),
//! which is why the central structures of this workspace are rings; the semiring
//! generalization is kept because it costs nothing and covers set-semantics query
//! processing (Example 2.2: the Boolean semiring).

use std::fmt::Debug;

/// A commutative semiring `(A, +, ∗, 0, 1)`.
///
/// Laws (checked by property tests in this crate, not by the compiler):
///
/// * `(A, +, 0)` is a commutative monoid;
/// * `(A, ∗, 1)` is a monoid;
/// * `∗` distributes over `+` on both sides;
/// * `0 ∗ a = a ∗ 0 = 0`.
///
/// All operations take references and return owned values; implementations are expected
/// to be cheap to clone (numbers) or to use structural sharing where appropriate.
pub trait Semiring: Clone + PartialEq + Debug {
    /// The additive identity `0`.
    fn zero() -> Self;
    /// The multiplicative identity `1`.
    fn one() -> Self;
    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Whether this element is the additive identity.
    ///
    /// Used to keep finite-support representations (monoid rings, GMRs) sparse: entries
    /// whose value `is_zero` are pruned.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
    /// Whether this element is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }
    /// In-place addition; the default forwards to [`Semiring::add`].
    fn add_assign(&mut self, other: &Self) {
        *self = self.add(other);
    }
}

/// A commutative ring with identity: a [`Semiring`] whose additive monoid is a group.
pub trait Ring: Semiring {
    /// The additive inverse `−a`.
    fn neg(&self) -> Self;
    /// Subtraction `a − b = a + (−b)`.
    fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }
}

/// Convenience: sum of an iterator of semiring elements.
pub fn sum<A: Semiring>(items: impl IntoIterator<Item = A>) -> A {
    let mut acc = A::zero();
    for item in items {
        acc.add_assign(&item);
    }
    acc
}

/// Convenience: product of an iterator of semiring elements.
pub fn product<A: Semiring>(items: impl IntoIterator<Item = A>) -> A {
    let mut acc = A::one();
    for item in items {
        acc = acc.mul(&item);
    }
    acc
}

macro_rules! impl_int_ring {
    ($($t:ty),*) => {
        $(
            impl Semiring for $t {
                fn zero() -> Self { 0 }
                fn one() -> Self { 1 }
                fn add(&self, other: &Self) -> Self { self.wrapping_add(*other) }
                fn mul(&self, other: &Self) -> Self { self.wrapping_mul(*other) }
                fn is_zero(&self) -> bool { *self == 0 }
                fn is_one(&self) -> bool { *self == 1 }
            }
            impl Ring for $t {
                fn neg(&self) -> Self { self.wrapping_neg() }
                fn sub(&self, other: &Self) -> Self { self.wrapping_sub(*other) }
            }
        )*
    };
}

// The paper's Theorem 7.1 argument assumes fixed-size machine words with modular
// arithmetic ("arithmetics is modulo maximum word size"), which is exactly two's
// complement wrapping — hence `wrapping_*` rather than panicking arithmetic.
impl_int_ring!(i8, i16, i32, i64, i128, isize);

impl Semiring for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

impl Ring for f64 {
    fn neg(&self) -> Self {
        -self
    }
}

/// The semiring of natural numbers `(ℕ, +, ∗, 0, 1)` (Example 2.2).
///
/// ℕ has no additive inverse and therefore does **not** form a ring; it is included to
/// exercise the semiring-only code paths (classical bag semantics without deletions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Natural(pub u64);

impl Semiring for Natural {
    fn zero() -> Self {
        Natural(0)
    }
    fn one() -> Self {
        Natural(1)
    }
    fn add(&self, other: &Self) -> Self {
        Natural(self.0.wrapping_add(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        Natural(self.0.wrapping_mul(other.0))
    }
}

/// The Boolean semiring `(𝔹, ∨, ∧, false, true)` (Example 2.2).
///
/// Monoid rings over `BoolSemiring` model set-semantics relations: a tuple is either in
/// the relation or not, and the convolution product is the set-semantics natural join.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BoolSemiring(pub bool);

impl Semiring for BoolSemiring {
    fn zero() -> Self {
        BoolSemiring(false)
    }
    fn one() -> Self {
        BoolSemiring(true)
    }
    fn add(&self, other: &Self) -> Self {
        BoolSemiring(self.0 || other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        BoolSemiring(self.0 && other.0)
    }
}

/// Exact rational numbers ℚ with `i64` numerator/denominator, kept in lowest terms with a
/// positive denominator (Example 2.2).
///
/// Used in tests where exact fractional multiplicities are convenient (e.g. checking that
/// `A[G]` is a ring for a ring `A` other than ℤ). Arithmetic panics on overflow of the
/// underlying `i64`s or on a zero denominator; the test workloads stay far away from
/// those bounds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rational {
    num: i64,
    den: i64,
}

impl Rational {
    /// Creates the rational `num / den`, normalizing sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()).max(1) as i64;
        Rational {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// Creates the integer rational `n / 1`.
    pub fn from_int(n: i64) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numerator(&self) -> i64 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denominator(&self) -> i64 {
        self.den
    }

    /// Multiplicative inverse, if the value is nonzero.
    pub fn recip(&self) -> Option<Self> {
        if self.num == 0 {
            None
        } else {
            Some(Rational::new(self.den, self.num))
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Semiring for Rational {
    fn zero() -> Self {
        Rational { num: 0, den: 1 }
    }
    fn one() -> Self {
        Rational { num: 1, den: 1 }
    }
    fn add(&self, other: &Self) -> Self {
        Rational::new(
            self.num * other.den + other.num * self.den,
            self.den * other.den,
        )
    }
    fn mul(&self, other: &Self) -> Self {
        Rational::new(self.num * other.num, self.den * other.den)
    }
    fn is_zero(&self) -> bool {
        self.num == 0
    }
}

impl Ring for Rational {
    fn neg(&self) -> Self {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl std::fmt::Display for Rational {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ring_basics() {
        assert_eq!(<i64 as Semiring>::zero(), 0);
        assert_eq!(<i64 as Semiring>::one(), 1);
        assert_eq!(3i64.add(&4), 7);
        assert_eq!(3i64.mul(&4), 12);
        assert_eq!(Ring::neg(&3i64), -3);
        assert_eq!(10i64.sub(&4), 6);
        assert!(0i64.is_zero());
        assert!(1i64.is_one());
    }

    #[test]
    fn integer_ring_wraps_like_machine_words() {
        // Theorem 7.1 assumes modular machine-word arithmetic.
        assert_eq!(i64::MAX.add(&1), i64::MIN);
        assert_eq!(i64::MIN.sub(&1), i64::MAX);
    }

    #[test]
    fn float_ring_basics() {
        assert_eq!(1.5f64.add(&2.5), 4.0);
        assert_eq!(1.5f64.mul(&2.0), 3.0);
        assert_eq!(Ring::neg(&1.5f64), -1.5);
    }

    #[test]
    fn natural_is_semiring_without_inverse() {
        let a = Natural(3);
        let b = Natural(4);
        assert_eq!(a.add(&b), Natural(7));
        assert_eq!(a.mul(&b), Natural(12));
        assert_eq!(Natural::zero(), Natural(0));
        assert_eq!(Natural::one(), Natural(1));
    }

    #[test]
    fn boolean_semiring_is_or_and() {
        let t = BoolSemiring(true);
        let f = BoolSemiring(false);
        assert_eq!(t.add(&f), t);
        assert_eq!(f.add(&f), f);
        assert_eq!(t.mul(&f), f);
        assert_eq!(t.mul(&t), t);
        assert_eq!(BoolSemiring::zero(), f);
        assert_eq!(BoolSemiring::one(), t);
    }

    #[test]
    fn rational_normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(1, -2), Rational::new(-1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(0, 5), Rational::zero());
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(1, 3).to_string(), "1/3");
    }

    #[test]
    fn rational_arithmetic() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half.add(&third), Rational::new(5, 6));
        assert_eq!(half.mul(&third), Rational::new(1, 6));
        assert_eq!(half.sub(&half), Rational::zero());
        assert_eq!(half.recip(), Some(Rational::new(2, 1)));
        assert_eq!(Rational::zero().recip(), None);
    }

    #[test]
    #[should_panic]
    fn rational_zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn sum_and_product_helpers() {
        assert_eq!(sum(vec![1i64, 2, 3, 4]), 10);
        assert_eq!(product(vec![1i64, 2, 3, 4]), 24);
        assert_eq!(sum(Vec::<i64>::new()), 0);
        assert_eq!(product(Vec::<i64>::new()), 1);
    }
}
