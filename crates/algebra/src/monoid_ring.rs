//! Monoid (semi)rings `A[G]` (Definition 2.3, Proposition 2.4).
//!
//! `A[G]` is the set of finite-support functions `α : G → A`, with pointwise addition and
//! the convolution product `(α ∗ β)(x) = Σ_{x = y ∗ z} α(y) ∗ β(z)`. When `G` is a
//! [`PartialMonoid`] (a mutilated monoid, Section 2.4), products whose index combination
//! fails are dropped — this is exactly the quotient `A[G]/I_{A[G],G₀}` of Lemma 2.9.
//!
//! The ring of generalized multiset relations of Section 3 (`dbring-relations`) is the
//! instance where `G` is the join monoid of singleton relations and `A = ℤ`.

use std::collections::HashMap;

use crate::monoid::PartialMonoid;
use crate::semiring::{Ring, Semiring};

/// An element of the monoid (semi)ring `A[G]`: a finite-support function `G → A`.
///
/// The representation is sparse: only indices with a non-zero coefficient are stored, and
/// every mutating operation prunes coefficients that become zero. Two elements compare
/// equal iff they have the same non-zero coefficients (i.e. equality is semantic function
/// equality, independent of insertion order).
#[derive(Clone, Debug)]
pub struct MonoidRing<A: Semiring, G: PartialMonoid> {
    support: HashMap<G, A>,
}

impl<A: Semiring, G: PartialMonoid> Default for MonoidRing<A, G> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<A: Semiring, G: PartialMonoid> MonoidRing<A, G> {
    /// The zero element (empty support).
    pub fn zero() -> Self {
        MonoidRing {
            support: HashMap::new(),
        }
    }

    /// The multiplicative identity `χ_{1_G}` (the unit of `G` with coefficient `1_A`).
    pub fn one() -> Self {
        Self::singleton(G::partial_unit(), A::one())
    }

    /// The basis element `a · χ_g`: coefficient `a` on index `g`, zero elsewhere.
    pub fn singleton(g: G, a: A) -> Self {
        let mut support = HashMap::new();
        if !a.is_zero() {
            support.insert(g, a);
        }
        MonoidRing { support }
    }

    /// Builds an element from `(index, coefficient)` pairs, summing duplicates.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (G, A)>) -> Self {
        let mut out = Self::zero();
        for (g, a) in pairs {
            out.add_entry(g, a);
        }
        out
    }

    /// The coefficient of index `g` (zero if absent).
    pub fn get(&self, g: &G) -> A {
        self.support.get(g).cloned().unwrap_or_else(A::zero)
    }

    /// Adds `a` to the coefficient of `g`, pruning if the result is zero.
    pub fn add_entry(&mut self, g: G, a: A) {
        if a.is_zero() {
            return;
        }
        match self.support.entry(g) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().add_assign(&a);
                if e.get().is_zero() {
                    e.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(a);
            }
        }
    }

    /// Number of indices with non-zero coefficient.
    pub fn support_size(&self) -> usize {
        self.support.len()
    }

    /// Whether this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.support.is_empty()
    }

    /// Iterates over `(index, coefficient)` pairs of the support (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&G, &A)> {
        self.support.iter()
    }

    /// Pointwise addition `(α + β)(x) = α(x) + β(x)`.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (g, a) in &other.support {
            out.add_entry(g.clone(), a.clone());
        }
        out
    }

    /// The convolution product `(α ∗ β)(x) = Σ_{x = y ∗ z} α(y) ∗ β(z)`.
    ///
    /// Index combinations for which `y ∗ z` is undefined (falls outside the mutilated
    /// monoid `G₀`) contribute nothing; this implements the quotient construction of
    /// Section 2.4.
    pub fn mul(&self, other: &Self) -> Self {
        let mut out = Self::zero();
        for (y, ay) in &self.support {
            for (z, az) in &other.support {
                if let Some(x) = y.try_combine(z) {
                    out.add_entry(x, ay.mul(az));
                }
            }
        }
        out
    }

    /// The scalar action `a · α` of the `A`-module structure (Section 2.5).
    pub fn scale(&self, a: &A) -> Self {
        if a.is_zero() {
            return Self::zero();
        }
        let mut out = Self::zero();
        for (g, coeff) in &self.support {
            out.add_entry(g.clone(), a.mul(coeff));
        }
        out
    }

    /// Applies a (semi)ring homomorphism `A → B` to every coefficient.
    pub fn map_coefficients<B: Semiring>(&self, f: impl Fn(&A) -> B) -> MonoidRing<B, G> {
        let mut out = MonoidRing::zero();
        for (g, a) in &self.support {
            out.add_entry(g.clone(), f(a));
        }
        out
    }

    /// The sum of all coefficients (the image of the "forget the index" homomorphism onto
    /// `A` when `G` is trivial; for GMRs this is the `Sum(…)` grand total).
    pub fn total(&self) -> A {
        let mut acc = A::zero();
        for a in self.support.values() {
            acc.add_assign(a);
        }
        acc
    }
}

impl<A: Ring, G: PartialMonoid> MonoidRing<A, G> {
    /// The additive inverse `(−α)(x) = −α(x)` (available when `A` is a ring).
    pub fn neg(&self) -> Self {
        let mut out = Self::zero();
        for (g, a) in &self.support {
            out.add_entry(g.clone(), a.neg());
        }
        out
    }

    /// Subtraction `α − β`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }
}

impl<A: Semiring, G: PartialMonoid> PartialEq for MonoidRing<A, G> {
    fn eq(&self, other: &Self) -> bool {
        if self.support.len() != other.support.len() {
            return false;
        }
        self.support
            .iter()
            .all(|(g, a)| other.support.get(g).is_some_and(|b| a == b))
    }
}

impl<A: Semiring, G: PartialMonoid> Semiring for MonoidRing<A, G> {
    fn zero() -> Self {
        MonoidRing::zero()
    }
    fn one() -> Self {
        MonoidRing::one()
    }
    fn add(&self, other: &Self) -> Self {
        MonoidRing::add(self, other)
    }
    fn mul(&self, other: &Self) -> Self {
        MonoidRing::mul(self, other)
    }
    fn is_zero(&self) -> bool {
        MonoidRing::is_zero(self)
    }
}

impl<A: Ring, G: PartialMonoid> Ring for MonoidRing<A, G> {
    fn neg(&self) -> Self {
        MonoidRing::neg(self)
    }
}

impl<A: Semiring, G: PartialMonoid> FromIterator<(G, A)> for MonoidRing<A, G> {
    fn from_iter<T: IntoIterator<Item = (G, A)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{FreeMonoid, Monoid, MultiDegree, NatAdd};

    type Poly = MonoidRing<i64, NatAdd>;

    fn x_pow(k: u32, coeff: i64) -> Poly {
        Poly::singleton(NatAdd(k), coeff)
    }

    #[test]
    fn zero_and_one() {
        assert!(Poly::zero().is_zero());
        assert_eq!(Poly::one().get(&NatAdd(0)), 1);
        assert_eq!(Poly::one().support_size(), 1);
    }

    #[test]
    fn addition_is_pointwise_and_prunes_zeros() {
        let p = x_pow(1, 3).add(&x_pow(2, 5));
        assert_eq!(p.get(&NatAdd(1)), 3);
        assert_eq!(p.get(&NatAdd(2)), 5);
        let q = p.add(&x_pow(1, -3));
        assert_eq!(q.get(&NatAdd(1)), 0);
        assert_eq!(q.support_size(), 1);
    }

    #[test]
    fn convolution_is_polynomial_multiplication() {
        // (1 + x) * (1 - x) = 1 - x^2
        let one_plus_x = Poly::one().add(&x_pow(1, 1));
        let one_minus_x = Poly::one().add(&x_pow(1, -1));
        let prod = one_plus_x.mul(&one_minus_x);
        assert_eq!(prod.get(&NatAdd(0)), 1);
        assert_eq!(prod.get(&NatAdd(1)), 0);
        assert_eq!(prod.get(&NatAdd(2)), -1);
    }

    #[test]
    fn multiplication_by_zero_annihilates() {
        let p = x_pow(3, 7).add(&x_pow(1, 2));
        assert!(p.mul(&Poly::zero()).is_zero());
        assert!(Poly::zero().mul(&p).is_zero());
    }

    #[test]
    fn one_is_multiplicative_identity() {
        let p = x_pow(3, 7).add(&x_pow(1, 2));
        assert_eq!(p.mul(&Poly::one()), p);
        assert_eq!(Poly::one().mul(&p), p);
    }

    #[test]
    fn additive_inverse() {
        let p = x_pow(2, 4).add(&x_pow(0, -1));
        assert!(p.add(&p.neg()).is_zero());
        assert_eq!(p.sub(&p), Poly::zero());
    }

    #[test]
    fn scalar_action_distributes() {
        let p = x_pow(1, 2).add(&x_pow(2, 3));
        let scaled = p.scale(&5);
        assert_eq!(scaled.get(&NatAdd(1)), 10);
        assert_eq!(scaled.get(&NatAdd(2)), 15);
        assert!(p.scale(&0).is_zero());
    }

    #[test]
    fn equality_is_semantic() {
        let p = Poly::from_pairs(vec![(NatAdd(1), 2), (NatAdd(2), 3)]);
        let q = Poly::from_pairs(vec![(NatAdd(2), 3), (NatAdd(1), 2)]);
        assert_eq!(p, q);
        let r = Poly::from_pairs(vec![(NatAdd(1), 2), (NatAdd(2), 3), (NatAdd(5), 0)]);
        assert_eq!(p, r);
    }

    #[test]
    fn from_pairs_sums_duplicates() {
        let p = Poly::from_pairs(vec![(NatAdd(1), 2), (NatAdd(1), 5)]);
        assert_eq!(p.get(&NatAdd(1)), 7);
    }

    #[test]
    fn total_sums_coefficients() {
        let p = Poly::from_pairs(vec![(NatAdd(0), 2), (NatAdd(3), 5), (NatAdd(7), -1)]);
        assert_eq!(p.total(), 6);
    }

    #[test]
    fn map_coefficients_is_a_homomorphism_on_examples() {
        let p = Poly::from_pairs(vec![(NatAdd(0), 2), (NatAdd(1), 3)]);
        let q = Poly::from_pairs(vec![(NatAdd(1), 5)]);
        let f = |a: &i64| (*a as f64) * 0.5;
        let lhs = p.mul(&q).map_coefficients(f);
        let rhs = p
            .map_coefficients(f)
            .mul(&q.map_coefficients(|a| *a as f64));
        // (a/2) * b  ==  (a*b)/2
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn multivariate_polynomials_multiply() {
        type MPoly = MonoidRing<i64, MultiDegree>;
        let x = MPoly::singleton(MultiDegree::var("x"), 1);
        let y = MPoly::singleton(MultiDegree::var("y"), 1);
        // (x + y)^2 = x^2 + 2xy + y^2
        let sum = x.add(&y);
        let sq = sum.mul(&sum);
        assert_eq!(sq.get(&MultiDegree::var_pow("x", 2)), 1);
        assert_eq!(sq.get(&MultiDegree::var_pow("y", 2)), 1);
        let xy = MultiDegree::var("x").combine(&MultiDegree::var("y"));
        assert_eq!(sq.get(&xy), 2);
    }

    #[test]
    fn free_monoid_ring_is_noncommutative() {
        type Words = MonoidRing<i64, FreeMonoid<char>>;
        let a = Words::singleton(FreeMonoid::letter('a'), 1);
        let b = Words::singleton(FreeMonoid::letter('b'), 1);
        assert_ne!(a.mul(&b), b.mul(&a));
    }
}
