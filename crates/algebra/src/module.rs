//! Monoid rings as modules and algebras (Section 2.5).
//!
//! Proposition 2.15: `A[G]` with the scalar action `a·α : x ↦ a ∗ α(x)` is an `A`-module
//! that is free on the basis `{χ_g | g ∈ G}`, and — for commutative `A` — an associative
//! `A`-algebra. Proposition 2.16 then shows the convolution product is the *unique*
//! extension of the additive group of `ℤ[G]` to a ring that is conservative over `∗_G`;
//! this crate demonstrates the uniqueness argument as an executable check
//! ([`product_determined_by_distributivity`]).

use crate::monoid::PartialMonoid;
use crate::monoid_ring::MonoidRing;
use crate::semiring::{Ring, Semiring};

/// A (left) module over the ring `A` (Definition 2.13), with operations written additively.
///
/// The laws — `(a+b)m = am + bm`, `(ab)m = a(bm)`, `a(m+n) = am + an`, `1m = m` — are
/// checked by the property-test suite for the provided [`MonoidRing`] instance.
pub trait Module<A: Ring>: Clone + PartialEq {
    /// The zero element of the module's additive group.
    fn zero() -> Self;
    /// Addition in the module.
    fn add(&self, other: &Self) -> Self;
    /// Additive inverse in the module.
    fn neg(&self) -> Self;
    /// The scalar action `a · m`.
    fn scale(&self, a: &A) -> Self;
}

impl<A: Ring, G: PartialMonoid> Module<A> for MonoidRing<A, G> {
    fn zero() -> Self {
        MonoidRing::zero()
    }
    fn add(&self, other: &Self) -> Self {
        MonoidRing::add(self, other)
    }
    fn neg(&self) -> Self {
        MonoidRing::neg(self)
    }
    fn scale(&self, a: &A) -> Self {
        MonoidRing::scale(self, a)
    }
}

/// Expresses `α` in the free basis `{χ_g}`: the unique decomposition
/// `α = Σ aᵢ χ_{gᵢ}` with non-zero coefficients (Proposition 2.15(1)).
pub fn basis_decomposition<A: Semiring, G: PartialMonoid>(alpha: &MonoidRing<A, G>) -> Vec<(G, A)> {
    alpha.iter().map(|(g, a)| (g.clone(), a.clone())).collect()
}

/// Recomputes the product `α ∗ β` *only* from distributivity, the scalar action, and the
/// base-monoid operation on basis elements (`χ_g ◦ χ_h = χ_{g∗h}`), i.e. without calling
/// the convolution product on non-basis elements. Proposition 2.16 states this is forced
/// to agree with `∗_{A[G]}`; the crate's tests verify the agreement.
pub fn product_determined_by_distributivity<A: Ring, G: PartialMonoid>(
    alpha: &MonoidRing<A, G>,
    beta: &MonoidRing<A, G>,
) -> MonoidRing<A, G> {
    let mut out = MonoidRing::zero();
    for (g, a) in alpha.iter() {
        for (h, b) in beta.iter() {
            // χ_g ◦ χ_h must be χ_{g∗h}; scale by the two coefficients (bilinearity).
            let chi = match g.try_combine(h) {
                Some(gh) => MonoidRing::singleton(gh, A::one()),
                None => MonoidRing::zero(),
            };
            out = Module::add(&out, &chi.scale(&a.mul(b)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::NatAdd;

    type Poly = MonoidRing<i64, NatAdd>;

    #[test]
    fn module_axioms_on_examples() {
        let m = Poly::from_pairs(vec![(NatAdd(0), 2), (NatAdd(2), -3)]);
        let n = Poly::from_pairs(vec![(NatAdd(1), 4)]);
        let (a, b) = (3i64, -5i64);

        // (a + b) m = a m + b m
        assert_eq!(m.scale(&(a + b)), Module::add(&m.scale(&a), &m.scale(&b)));
        // (a b) m = a (b m)
        assert_eq!(m.scale(&(a * b)), m.scale(&b).scale(&a));
        // a (m + n) = a m + a n
        assert_eq!(
            Module::add(&m, &n).scale(&a),
            Module::add(&m.scale(&a), &n.scale(&a))
        );
        // 1 m = m
        assert_eq!(m.scale(&1), m);
        // m + (-m) = 0
        assert_eq!(Module::add(&m, &Module::neg(&m)), Poly::zero());
    }

    #[test]
    fn basis_decomposition_is_faithful() {
        let m = Poly::from_pairs(vec![(NatAdd(0), 2), (NatAdd(2), -3), (NatAdd(7), 1)]);
        let decomposition = basis_decomposition(&m);
        assert_eq!(decomposition.len(), 3);
        // Reassemble from the basis: Σ aᵢ χ_{gᵢ}
        let rebuilt = decomposition.into_iter().fold(Poly::zero(), |acc, (g, a)| {
            Module::add(&acc, &Poly::singleton(g, 1).scale(&a))
        });
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn convolution_is_forced_by_distributivity() {
        let alpha = Poly::from_pairs(vec![(NatAdd(0), 1), (NatAdd(1), 2), (NatAdd(3), -1)]);
        let beta = Poly::from_pairs(vec![(NatAdd(1), 5), (NatAdd(2), 7)]);
        assert_eq!(
            product_determined_by_distributivity(&alpha, &beta),
            alpha.mul(&beta)
        );
    }

    #[test]
    fn bilinearity_of_the_convolution_product() {
        // (a·x) ∗ y = a·(x ∗ y) = x ∗ (a·y)   (Proposition 2.14(2) / 2.15(2))
        let x = Poly::from_pairs(vec![(NatAdd(1), 2)]);
        let y = Poly::from_pairs(vec![(NatAdd(2), 3), (NatAdd(0), 1)]);
        let a = 7i64;
        assert_eq!(x.scale(&a).mul(&y), x.mul(&y).scale(&a));
        assert_eq!(x.mul(&y.scale(&a)), x.mul(&y).scale(&a));
    }
}
