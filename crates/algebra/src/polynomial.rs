//! Univariate polynomials over a commutative ring, with the symbolic differencing used in
//! Example 1.1 of the paper.
//!
//! The delta of a polynomial `f` with respect to an update `u` is
//! `∆f(x, u) = f(x + u) − f(x)`; it is again a polynomial in `x` (of degree one less), so
//! iterating `∆` terminates after `deg(f) + 1` steps. This is the "toy instance" of the
//! recursive incremental view maintenance scheme that Section 1.1 builds intuition with,
//! and the structure behind Figure 1.

use crate::semiring::{Ring, Semiring};

/// A dense univariate polynomial `c₀ + c₁x + c₂x² + …` over a commutative ring `A`.
///
/// The coefficient vector is kept *normalized*: the highest-order stored coefficient is
/// non-zero (the zero polynomial stores an empty vector).
#[derive(Clone, PartialEq, Debug)]
pub struct Polynomial<A: Ring> {
    coeffs: Vec<A>,
}

impl<A: Ring> Polynomial<A> {
    /// Builds a polynomial from coefficients in increasing-power order, trimming trailing
    /// zeros.
    pub fn new(coeffs: Vec<A>) -> Self {
        let mut p = Polynomial { coeffs };
        p.normalize();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: A) -> Self {
        Polynomial::new(vec![c])
    }

    /// The identity polynomial `x`.
    pub fn x() -> Self {
        Polynomial::new(vec![A::zero(), A::one()])
    }

    /// The monomial `c·xᵏ`.
    pub fn monomial(c: A, k: usize) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![A::zero(); k + 1];
        coeffs[k] = c;
        Polynomial { coeffs }
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(Semiring::is_zero) {
            self.coeffs.pop();
        }
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// The coefficient of `xᵏ`.
    pub fn coefficient(&self, k: usize) -> A {
        self.coeffs.get(k).cloned().unwrap_or_else(A::zero)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates the polynomial at `x` (Horner's scheme).
    pub fn eval(&self, x: &A) -> A {
        let mut acc = A::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc.mul(x).add(c);
        }
        acc
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n)
            .map(|i| self.coefficient(i).add(&other.coefficient(i)))
            .collect();
        Polynomial::new(coeffs)
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        Polynomial::new(self.coeffs.iter().map(Ring::neg).collect())
    }

    /// Polynomial subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Polynomial multiplication (convolution of coefficient vectors).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![A::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            for (j, b) in other.coeffs.iter().enumerate() {
                coeffs[i + j].add_assign(&a.mul(b));
            }
        }
        Polynomial::new(coeffs)
    }

    /// Scales every coefficient by `a`.
    pub fn scale(&self, a: &A) -> Self {
        Polynomial::new(self.coeffs.iter().map(|c| c.mul(a)).collect())
    }

    /// Composition `self ∘ g`, i.e. the polynomial `x ↦ self(g(x))` (Horner's scheme over
    /// polynomials).
    pub fn compose(&self, g: &Self) -> Self {
        let mut acc = Self::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc.mul(g).add(&Self::constant(c.clone()));
        }
        acc
    }

    /// The shifted polynomial `x ↦ f(x + u)`.
    pub fn shift(&self, u: &A) -> Self {
        self.compose(&Polynomial::new(vec![u.clone(), A::one()]))
    }

    /// The symbolic delta `∆f_u : x ↦ f(x + u) − f(x)` of Example 1.1.
    ///
    /// For a non-constant `f` this has degree `deg(f) − 1`; for a constant `f` it is zero.
    pub fn delta(&self, u: &A) -> Self {
        self.shift(u).sub(self)
    }

    /// The iterated delta `∆ʲf(·, u₁, …, uⱼ)` as a polynomial in `x`, obtained by applying
    /// [`Polynomial::delta`] once per update, left to right.
    pub fn iterated_delta(&self, updates: &[A]) -> Self {
        let mut p = self.clone();
        for u in updates {
            p = p.delta(u);
        }
        p
    }
}

impl<A: Ring + std::fmt::Display> std::fmt::Display for Polynomial<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match k {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}*x")?,
                _ => write!(f, "{c}*x^{k}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x_squared() -> Polynomial<i64> {
        // f(x) = x^2, the running example of Section 1.1.
        Polynomial::monomial(1, 2)
    }

    #[test]
    fn construction_and_normalization() {
        let p = Polynomial::new(vec![1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coefficient(0), 1);
        assert_eq!(p.coefficient(1), 2);
        assert_eq!(p.coefficient(5), 0);
        assert!(Polynomial::<i64>::zero().is_zero());
        assert_eq!(Polynomial::<i64>::zero().degree(), None);
        assert!(Polynomial::monomial(0i64, 3).is_zero());
    }

    #[test]
    fn evaluation() {
        let f = x_squared();
        assert_eq!(f.eval(&0), 0);
        assert_eq!(f.eval(&3), 9);
        assert_eq!(f.eval(&-4), 16);
        let g = Polynomial::new(vec![1, -2, 3]); // 1 - 2x + 3x^2
        assert_eq!(g.eval(&2), 1 - 4 + 12);
    }

    #[test]
    fn arithmetic() {
        let f = Polynomial::new(vec![1i64, 1]); // 1 + x
        let g = Polynomial::new(vec![-1i64, 1]); // -1 + x
        assert_eq!(f.mul(&g), Polynomial::new(vec![-1, 0, 1])); // x^2 - 1
        assert_eq!(f.add(&g), Polynomial::new(vec![0, 2]));
        assert_eq!(f.sub(&f), Polynomial::zero());
        assert_eq!(f.scale(&3), Polynomial::new(vec![3, 3]));
    }

    #[test]
    fn composition_and_shift() {
        let f = x_squared();
        // f(x + 1) = x^2 + 2x + 1
        assert_eq!(f.shift(&1), Polynomial::new(vec![1, 2, 1]));
        // f(x - 1) = x^2 - 2x + 1
        assert_eq!(f.shift(&-1), Polynomial::new(vec![1, -2, 1]));
        // (x+1)^2 ∘ (2x) = (2x+1)^2 = 4x^2 + 4x + 1
        let g = Polynomial::new(vec![1i64, 1]).mul(&Polynomial::new(vec![1, 1]));
        assert_eq!(
            g.compose(&Polynomial::new(vec![0, 2])),
            Polynomial::new(vec![1, 4, 4])
        );
    }

    #[test]
    fn example_1_1_deltas_of_x_squared() {
        let f = x_squared();
        // ∆f(x, u) = 2ux + u², here with u as a concrete value.
        assert_eq!(f.delta(&1), Polynomial::new(vec![1, 2])); // 2x + 1
        assert_eq!(f.delta(&-1), Polynomial::new(vec![1, -2])); // -2x + 1
                                                                // ∆²f(x, u1, u2) = 2 u1 u2, a constant.
        assert_eq!(f.iterated_delta(&[1, 1]), Polynomial::constant(2));
        assert_eq!(f.iterated_delta(&[1, -1]), Polynomial::constant(-2));
        assert_eq!(f.iterated_delta(&[-1, -1]), Polynomial::constant(2));
        // ∆³f ≡ 0.
        assert!(f.iterated_delta(&[1, 1, 1]).is_zero());
        assert!(f.iterated_delta(&[-1, 1, -1]).is_zero());
    }

    #[test]
    fn delta_reduces_degree_by_one() {
        let f = Polynomial::new(vec![5i64, -3, 2, 7]); // degree 3
        assert_eq!(f.delta(&2).degree(), Some(2));
        assert_eq!(f.iterated_delta(&[2, 1]).degree(), Some(1));
        assert_eq!(f.iterated_delta(&[2, 1, -1]).degree(), Some(0));
        assert!(f.iterated_delta(&[2, 1, -1, 3]).is_zero());
        // Constants vanish after one delta.
        assert!(Polynomial::constant(9i64).delta(&5).is_zero());
    }

    #[test]
    fn delta_satisfies_the_defining_equation() {
        // f(x + u) = f(x) + ∆f(x, u) for all sampled x, u.
        let f = Polynomial::new(vec![2i64, 0, -1, 4]);
        for x in -5i64..=5 {
            for u in [-2i64, -1, 1, 3] {
                let lhs = f.eval(&(x + u));
                let rhs = f.eval(&x) + f.delta(&u).eval(&x);
                assert_eq!(lhs, rhs, "x={x}, u={u}");
            }
        }
    }

    #[test]
    fn works_over_floats() {
        let f = Polynomial::new(vec![0.5f64, 0.0, 1.0]); // 0.5 + x^2
        assert_eq!(f.eval(&2.0), 4.5);
        assert_eq!(f.delta(&1.0).eval(&3.0), f.eval(&4.0) - f.eval(&3.0));
    }

    #[test]
    fn display_formatting() {
        let f = Polynomial::new(vec![1i64, 0, 3]);
        assert_eq!(f.to_string(), "1 + 3*x^2");
        assert_eq!(Polynomial::<i64>::zero().to_string(), "0");
        assert_eq!(Polynomial::new(vec![0i64, 2]).to_string(), "2*x");
    }
}
