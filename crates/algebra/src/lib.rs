//! Abstract-algebra substrate for the `dbring` reproduction of
//! *Incremental Query Evaluation in a Ring of Databases* (Koch, PODS 2010).
//!
//! This crate implements Section 2 of the paper:
//!
//! * [`semiring`] — the [`Semiring`] and [`Ring`] traits
//!   together with the standard instances (ℤ, ℚ, ℝ as `f64`, ℕ, 𝔹).
//! * [`monoid`] — (partial) monoids `G` used as the index structure of monoid rings.
//! * [`monoid_ring`] — the monoid (semi)ring `A[G]` of finite-support functions `G → A`
//!   with the convolution product (Definition 2.3, Proposition 2.4).
//! * [`avalanche`] — the avalanche (semi)ring `⇒A[G]` of functions `G → A[G]` with the
//!   sideways-binding-passing product (Definition 2.5, Theorem 2.6).
//! * [`mutilate`] — "mutilating the monoids": quotients of `A[G]` by the ideal induced by a
//!   downward-closed subset `G₀ ⊆ G` (Section 2.4, Lemmas 2.9–2.12).
//! * [`module`] — the view of `A[G]` as a free `A`-module and the scalar action (Section 2.5).
//! * [`polynomial`] — univariate polynomials over a ring, with symbolic differencing
//!   (`∆f(x, u) = f(x + u) − f(x)`), reproducing Example 1.1.
//! * [`recursive_delta`] — the abstract recursive delta-memoization scheme of Section 1.1
//!   (Equation (1)); regenerates Figure 1 of the paper.
//! * [`number`] — a dynamically typed exact-int / float numeric ring used for aggregate
//!   values throughout the workspace.
//!
//! Everything here is deliberately independent of databases; the database instantiation
//! (the ring of generalized multiset relations `A[T]`) lives in `dbring-relations`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avalanche;
pub mod module;
pub mod monoid;
pub mod monoid_ring;
pub mod mutilate;
pub mod number;
pub mod polynomial;
pub mod recursive_delta;
pub mod semiring;

pub use avalanche::Avalanche;
pub use monoid::{FreeMonoid, Monoid, MultiDegree, NatAdd, PartialMonoid};
pub use monoid_ring::MonoidRing;
pub use number::Number;
pub use polynomial::Polynomial;
pub use recursive_delta::{DeltaHierarchy, RecursiveMemo};
pub use semiring::{BoolSemiring, Natural, Rational, Ring, Semiring};
