//! The abstract recursive delta-memoization scheme of Section 1.1.
//!
//! Given a function `f` whose `k`-th delta is identically zero and a finite set of
//! possible updates `U`, the scheme memoizes the values `∆ʲf(x, u₁,…,uⱼ)` for all
//! `0 ≤ j < k` and all `(u₁,…,uⱼ) ∈ Uʲ`. Applying an update `u` then only requires the
//! additions of Equation (1):
//!
//! ```text
//! ∆ʲf(x + u, θ)  :=  ∆ʲf(x, θ) + ∆ʲ⁺¹f(x, θ, u)
//! ```
//!
//! processed in order of increasing `j` so the table can be updated in place. The function
//! definitions are consulted **only** during initialization; afterwards each update costs
//! exactly one addition per memoized value — the constant-work-per-value property that the
//! paper later lifts to query evaluation (Theorem 7.1).
//!
//! [`RecursiveMemo`] is the generic engine; [`Polynomial`] provides the
//! [`DeltaHierarchy`] instance that regenerates Figure 1 (`f(x) = x²`, `U = {+1, −1}`).

use std::collections::HashMap;

use crate::polynomial::Polynomial;
use crate::semiring::Ring;

/// A function `f : A → A` together with a static bound `k` such that `∆ᵏf ≡ 0`, and a way
/// to evaluate any iterated delta *from its definition* (used only at initialization).
pub trait DeltaHierarchy<A> {
    /// The number of memoized levels `k`: the `k`-th delta is identically zero.
    ///
    /// `order() == 0` means the function itself is identically zero.
    fn order(&self) -> usize;

    /// Evaluates `∆ʲf(x, u₁,…,uⱼ)` from the definition, where `j = updates.len()`.
    fn delta_at(&self, x: &A, updates: &[A]) -> A;
}

impl<A: Ring> DeltaHierarchy<A> for Polynomial<A> {
    fn order(&self) -> usize {
        match self.degree() {
            None => 0,
            Some(d) => d + 1,
        }
    }

    fn delta_at(&self, x: &A, updates: &[A]) -> A {
        self.iterated_delta(updates).eval(x)
    }
}

/// The memoized hierarchy of delta values for one function under a finite update set `U`.
///
/// Level `j` stores one value per `j`-tuple of update indices; level 0 stores the single
/// value `f(x)` for the current `x`. The structure never re-evaluates the function after
/// construction: [`RecursiveMemo::apply`] performs only ring additions (counted in
/// [`RecursiveMemo::additions`]).
#[derive(Clone, Debug)]
pub struct RecursiveMemo<A: Ring> {
    updates: Vec<A>,
    /// `levels[j]` maps a `j`-tuple of indices into `updates` to the memoized value
    /// `∆ʲf(x_current, u_{i₁}, …, u_{iⱼ})`.
    levels: Vec<HashMap<Vec<usize>, A>>,
    additions: u64,
}

impl<A: Ring> RecursiveMemo<A> {
    /// Initializes the hierarchy for function `f` at starting point `x0` with possible
    /// updates `updates` (the paper's `U`), evaluating every `∆ʲf` from its definition.
    pub fn new(f: &impl DeltaHierarchy<A>, x0: &A, updates: Vec<A>) -> Self {
        let k = f.order();
        let mut levels = Vec::with_capacity(k);
        for j in 0..k {
            let mut level = HashMap::new();
            for idx in index_tuples(updates.len(), j) {
                let args: Vec<A> = idx.iter().map(|&i| updates[i].clone()).collect();
                level.insert(idx, f.delta_at(x0, &args));
            }
            levels.push(level);
        }
        RecursiveMemo {
            updates,
            levels,
            additions: 0,
        }
    }

    /// The possible updates `U`, in the order used by update indices.
    pub fn updates(&self) -> &[A] {
        &self.updates
    }

    /// The number of memoized levels `k`.
    pub fn order(&self) -> usize {
        self.levels.len()
    }

    /// Total number of memoized values (`|U|⁰ + |U|¹ + … + |U|^(k−1)`).
    pub fn memoized_values(&self) -> usize {
        self.levels.iter().map(HashMap::len).sum()
    }

    /// The current value `f(x)` (level 0), or zero if the function is identically zero.
    pub fn current(&self) -> A {
        self.value(&[]).unwrap_or_else(A::zero)
    }

    /// The memoized value `∆ʲf(x, u_{i₁},…,u_{iⱼ})` for `j = update_indices.len()`.
    ///
    /// Returns `None` if `j ≥ k` (those deltas are identically zero and not stored) or an
    /// index is out of range.
    pub fn value(&self, update_indices: &[usize]) -> Option<A> {
        self.levels
            .get(update_indices.len())
            .and_then(|level| level.get(update_indices))
            .cloned()
    }

    /// Applies the update with index `update_index` (into [`RecursiveMemo::updates`]) using
    /// Equation (1): every memoized value receives exactly one addition, in place, in order
    /// of increasing level.
    ///
    /// # Panics
    /// Panics if `update_index` is out of range.
    pub fn apply(&mut self, update_index: usize) {
        assert!(
            update_index < self.updates.len(),
            "update index {update_index} out of range"
        );
        let k = self.levels.len();
        for j in 0..k {
            // ∆ʲf(x+u, θ) := ∆ʲf(x, θ) + ∆ʲ⁺¹f(x, θ, u); the (j+1)-st delta is zero when
            // j + 1 == k, so the top level is left untouched (it is constant in x).
            if j + 1 == k {
                break;
            }
            let keys: Vec<Vec<usize>> = self.levels[j].keys().cloned().collect();
            for theta in keys {
                let mut extended = theta.clone();
                extended.push(update_index);
                let increment = self.levels[j + 1]
                    .get(&extended)
                    .cloned()
                    .unwrap_or_else(A::zero);
                if let Some(v) = self.levels[j].get_mut(&theta) {
                    *v = v.add(&increment);
                    self.additions += 1;
                }
            }
        }
    }

    /// The total number of ring additions performed by [`RecursiveMemo::apply`] so far.
    pub fn additions(&self) -> u64 {
        self.additions
    }

    /// A deterministic snapshot of all memoized values, ordered by level and then by the
    /// update-index tuple — one row of Figure 1.
    pub fn snapshot(&self) -> Vec<(Vec<usize>, A)> {
        let mut out = Vec::with_capacity(self.memoized_values());
        for level in &self.levels {
            let mut entries: Vec<_> = level.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            out.extend(entries.into_iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }
}

/// All `j`-tuples over `0..n`, in lexicographic order.
fn index_tuples(n: usize, j: usize) -> Vec<Vec<usize>> {
    if j == 0 {
        return vec![Vec::new()];
    }
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n.pow(j as u32));
    let shorter = index_tuples(n, j - 1);
    for prefix in shorter {
        for i in 0..n {
            let mut t = prefix.clone();
            t.push(i);
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 setup: f(x) = x², U = {+1, −1}, starting at x = 0.
    fn figure1_memo() -> RecursiveMemo<i64> {
        let f = Polynomial::monomial(1i64, 2);
        RecursiveMemo::new(&f, &0, vec![1, -1])
    }

    #[test]
    fn figure1_initialization_at_zero() {
        let memo = figure1_memo();
        assert_eq!(memo.order(), 3);
        // |U|^0 + |U|^1 + |U|^2 = 1 + 2 + 4 = 7 memoized values, as in the paper.
        assert_eq!(memo.memoized_values(), 7);
        // Row x = 0 of Figure 1: f = 0, ∆f(·,+1) = 1, ∆f(·,−1) = 1,
        // ∆²f(+1,+1) = 2, ∆²f(+1,−1) = −2, ∆²f(−1,+1) = −2, ∆²f(−1,−1) = 2.
        assert_eq!(memo.current(), 0);
        assert_eq!(memo.value(&[0]), Some(1)); // u = +1
        assert_eq!(memo.value(&[1]), Some(1)); // u = −1
        assert_eq!(memo.value(&[0, 0]), Some(2));
        assert_eq!(memo.value(&[0, 1]), Some(-2));
        assert_eq!(memo.value(&[1, 0]), Some(-2));
        assert_eq!(memo.value(&[1, 1]), Some(2));
        // ∆³f is not memoized (identically zero).
        assert_eq!(memo.value(&[0, 0, 0]), None);
    }

    #[test]
    fn applying_updates_tracks_f_without_reevaluation() {
        let mut memo = figure1_memo();
        let f = Polynomial::monomial(1i64, 2);
        let mut x = 0i64;
        // The walk used in the paper's narrative: increment to 4, then back down to −2.
        let walk: Vec<usize> = [0, 0, 0, 0, 1, 1, 1, 1, 1, 1].to_vec();
        for &u_idx in &walk {
            memo.apply(u_idx);
            x += memo.updates()[u_idx];
            assert_eq!(memo.current(), f.eval(&x), "after moving to x = {x}");
            // First deltas must also match their definitions.
            assert_eq!(memo.value(&[0]).unwrap(), f.delta(&1).eval(&x));
            assert_eq!(memo.value(&[1]).unwrap(), f.delta(&-1).eval(&x));
        }
    }

    #[test]
    fn each_update_costs_one_addition_per_non_top_level_value() {
        let mut memo = figure1_memo();
        // Levels 0 and 1 hold 1 + 2 = 3 values that receive one addition each; the top
        // level (constant in x) receives none.
        memo.apply(0);
        assert_eq!(memo.additions(), 3);
        memo.apply(1);
        assert_eq!(memo.additions(), 6);
    }

    #[test]
    fn example_from_the_paper_x_equals_3_incremented() {
        // "let x = 3 and we increment x by 1. Then f(·) += 7 = 16, ∆¹f(·,+1) += 2 = 9,
        //  ∆¹f(·,−1) += −2 = −7, and ∆²f(·,·,·) += 0."
        let f = Polynomial::monomial(1i64, 2);
        let mut memo = RecursiveMemo::new(&f, &3, vec![1, -1]);
        assert_eq!(memo.current(), 9);
        assert_eq!(memo.value(&[0]), Some(7));
        assert_eq!(memo.value(&[1]), Some(-5));
        memo.apply(0);
        assert_eq!(memo.current(), 16);
        assert_eq!(memo.value(&[0]), Some(9));
        assert_eq!(memo.value(&[1]), Some(-7));
        assert_eq!(memo.value(&[0, 0]), Some(2));
    }

    #[test]
    fn zero_function_needs_no_memoized_values() {
        let memo = RecursiveMemo::new(&Polynomial::<i64>::zero(), &5, vec![1, -1]);
        assert_eq!(memo.order(), 0);
        assert_eq!(memo.memoized_values(), 0);
        assert_eq!(memo.current(), 0);
    }

    #[test]
    fn constant_function_has_a_single_level() {
        let mut memo = RecursiveMemo::new(&Polynomial::constant(42i64), &0, vec![1, -1]);
        assert_eq!(memo.order(), 1);
        assert_eq!(memo.memoized_values(), 1);
        memo.apply(0);
        assert_eq!(memo.current(), 42);
        assert_eq!(memo.additions(), 0);
    }

    #[test]
    fn cubic_polynomial_is_tracked_exactly() {
        let f = Polynomial::new(vec![1i64, -2, 0, 3]); // 1 - 2x + 3x^3, degree 3
        let updates = vec![1i64, -1, 2];
        let mut memo = RecursiveMemo::new(&f, &-1, updates.clone());
        assert_eq!(memo.order(), 4);
        assert_eq!(memo.memoized_values(), 1 + 3 + 9 + 27);
        let mut x = -1i64;
        for u_idx in [0usize, 2, 1, 2, 0, 0, 1] {
            memo.apply(u_idx);
            x += updates[u_idx];
            assert_eq!(memo.current(), f.eval(&x));
        }
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let memo = figure1_memo();
        let snap = memo.snapshot();
        assert_eq!(snap.len(), 7);
        assert_eq!(snap[0].0, Vec::<usize>::new());
        assert_eq!(snap[1].0, vec![0]);
        assert_eq!(snap[2].0, vec![1]);
        assert_eq!(snap[3].0, vec![0, 0]);
        assert_eq!(snap[6].0, vec![1, 1]);
    }

    #[test]
    fn index_tuples_enumeration() {
        assert_eq!(index_tuples(2, 0), vec![Vec::<usize>::new()]);
        assert_eq!(index_tuples(2, 1), vec![vec![0], vec![1]]);
        assert_eq!(index_tuples(2, 2).len(), 4);
        assert_eq!(index_tuples(3, 3).len(), 27);
        assert!(index_tuples(0, 2).is_empty());
    }
}
