//! A dynamically typed numeric ring used for aggregate values throughout the workspace.
//!
//! AGCA aggregate queries mix integer multiplicities with data values that may be
//! floating point (`Sum(R(a, f) * a * f)`). [`Number`] is a small exact-when-possible
//! numeric tower: integer arithmetic stays exact (wrapping `i64`, matching the paper's
//! machine-word model from Theorem 7.1), and any operation involving a float widens to
//! `f64`.

use serde::{Deserialize, Serialize};

use crate::semiring::{Ring, Semiring};

/// An integer-or-float number forming a commutative ring.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Number {
    /// Exact 64-bit integer (wrapping arithmetic).
    Int(i64),
    /// IEEE-754 double.
    Float(f64),
}

impl Number {
    /// The value as an `f64` (exact ints convert losslessly up to 2^53).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(i) => *i as f64,
            Number::Float(f) => *f,
        }
    }

    /// The value as an `i64` if it is an integer (or an integral float).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(*i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(*f as i64),
            Number::Float(_) => None,
        }
    }

    /// Whether the representation is the exact-integer variant.
    pub fn is_int(&self) -> bool {
        matches!(self, Number::Int(_))
    }

    /// Numeric comparison (ints and floats compare by value).
    pub fn compare(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a.cmp(b),
            _ => self
                .as_f64()
                .partial_cmp(&other.as_f64())
                .unwrap_or(std::cmp::Ordering::Equal),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.compare(other))
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::Int(v)
    }
}

impl From<i32> for Number {
    fn from(v: i32) -> Self {
        Number::Int(v as i64)
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::Float(v)
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => write!(f, "{x}"),
        }
    }
}

impl Semiring for Number {
    fn zero() -> Self {
        Number::Int(0)
    }
    fn one() -> Self {
        Number::Int(1)
    }
    fn add(&self, other: &Self) -> Self {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => Number::Int(a.wrapping_add(*b)),
            _ => Number::Float(self.as_f64() + other.as_f64()),
        }
    }
    fn mul(&self, other: &Self) -> Self {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => Number::Int(a.wrapping_mul(*b)),
            _ => Number::Float(self.as_f64() * other.as_f64()),
        }
    }
    fn is_zero(&self) -> bool {
        match self {
            Number::Int(i) => *i == 0,
            Number::Float(f) => *f == 0.0,
        }
    }
}

impl Ring for Number {
    fn neg(&self) -> Self {
        match self {
            Number::Int(i) => Number::Int(i.wrapping_neg()),
            Number::Float(f) => Number::Float(-f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_stays_exact() {
        let a = Number::Int(3);
        let b = Number::Int(4);
        assert_eq!(a.add(&b), Number::Int(7));
        assert_eq!(a.mul(&b), Number::Int(12));
        assert!(a.add(&b).is_int());
        assert_eq!(Ring::neg(&a), Number::Int(-3));
    }

    #[test]
    fn mixed_arithmetic_widens_to_float() {
        let a = Number::Int(3);
        let b = Number::Float(0.5);
        assert_eq!(a.add(&b), Number::Float(3.5));
        assert_eq!(a.mul(&b), Number::Float(1.5));
        assert!(!a.mul(&b).is_int());
    }

    #[test]
    fn cross_representation_equality_and_ordering() {
        assert_eq!(Number::Int(2), Number::Float(2.0));
        assert!(Number::Int(2) < Number::Float(2.5));
        assert!(Number::Float(-1.0) < Number::Int(0));
        assert_eq!(
            Number::Int(2).compare(&Number::Int(2)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Number::from(5i64).as_f64(), 5.0);
        assert_eq!(Number::from(2.5f64).as_i64(), None);
        assert_eq!(Number::Float(3.0).as_i64(), Some(3));
        assert_eq!(Number::Int(-7).as_i64(), Some(-7));
        assert_eq!(Number::from(5i32), Number::Int(5));
    }

    #[test]
    fn display() {
        assert_eq!(Number::Int(42).to_string(), "42");
        assert_eq!(Number::Float(1.5).to_string(), "1.5");
    }

    #[test]
    fn ring_identities() {
        let x = Number::Float(2.5);
        assert_eq!(x.add(&Number::zero()), x);
        assert_eq!(x.mul(&Number::one()), x);
        assert!(x.sub(&x).is_zero());
        assert!(Number::zero().is_zero());
        assert!(Number::one().is_one());
    }
}
