//! Avalanche (semi)rings `⇒A[G]` (Definition 2.5, Theorem 2.6).
//!
//! An avalanche-ring element is a function `f : G → A[G]`; the product threads the left
//! factor's index into the argument of the right factor:
//!
//! ```text
//! (f ∗ g)(b) = x ↦ Σ_{x = y ∗ z}  f(b)(y) ∗_A g(b ∗ y)(z)
//! ```
//!
//! This "sideways binding passing" is what lets the query calculus of Section 4 express
//! range-restricted conditions and assignments without a higher-order selection operator:
//! the tuple produced by the left factor becomes part of the binding context of the right
//! factor. The database instantiation (parametrized GMRs) lives in `dbring-relations`;
//! this module provides the generic construction over any [`PartialMonoid`] so the
//! algebraic laws can be tested in isolation.

use std::rc::Rc;

use crate::monoid::PartialMonoid;
use crate::monoid_ring::MonoidRing;
use crate::semiring::{Ring, Semiring};

/// The shared function `G → A[G]` underlying an avalanche element.
type AvalancheFn<A, G> = Rc<dyn Fn(&G) -> MonoidRing<A, G>>;

/// An element of the avalanche (semi)ring `⇒A[G]`: a function `G → A[G]`.
///
/// Elements are represented as shared closures; they cannot be compared for equality in
/// general (function extensionality), so tests compare them pointwise at sample indices.
#[derive(Clone)]
pub struct Avalanche<A: Semiring + 'static, G: PartialMonoid + 'static> {
    f: AvalancheFn<A, G>,
}

impl<A: Semiring, G: PartialMonoid> Avalanche<A, G> {
    /// Wraps an arbitrary function `G → A[G]`.
    pub fn new(f: impl Fn(&G) -> MonoidRing<A, G> + 'static) -> Self {
        Avalanche { f: Rc::new(f) }
    }

    /// The constant function `· ↦ α`: the embedding of `A[G]` as the sub-ring `⇒A[G]₀`
    /// of parameter-ignoring functions (Proposition 2.8).
    pub fn lift(alpha: MonoidRing<A, G>) -> Self {
        Avalanche::new(move |_| alpha.clone())
    }

    /// The additive identity `· ↦ 0_{A[G]}`.
    pub fn zero() -> Self {
        Avalanche::lift(MonoidRing::zero())
    }

    /// The multiplicative identity `· ↦ 1_{A[G]}`.
    pub fn one() -> Self {
        Avalanche::lift(MonoidRing::one())
    }

    /// Evaluates the function at binding context `b`.
    pub fn at(&self, b: &G) -> MonoidRing<A, G> {
        (self.f)(b)
    }

    /// Pointwise addition `(f + g)(b)(x) = f(b)(x) + g(b)(x)`.
    pub fn add(&self, other: &Self) -> Self {
        let (f, g) = (self.clone(), other.clone());
        Avalanche::new(move |b| f.at(b).add(&g.at(b)))
    }

    /// The avalanche product with sideways binding passing (Definition 2.5):
    /// `(f ∗ g)(b)(x) = Σ_{x = y ∗ z} f(b)(y) ∗_A g(b ∗ y)(z)`.
    ///
    /// Combinations where `b ∗ y` or `y ∗ z` fall outside the mutilated monoid are dropped
    /// (the extended-type convention at the end of Section 2.4).
    pub fn mul(&self, other: &Self) -> Self {
        let (f, g) = (self.clone(), other.clone());
        Avalanche::new(move |b| {
            let mut out = MonoidRing::zero();
            let left = f.at(b);
            for (y, ay) in left.iter() {
                let Some(by) = b.try_combine(y) else {
                    continue;
                };
                let right = g.at(&by);
                for (z, az) in right.iter() {
                    if let Some(x) = y.try_combine(z) {
                        out.add_entry(x, ay.mul(az));
                    }
                }
            }
            out
        })
    }
}

impl<A: Ring, G: PartialMonoid> Avalanche<A, G> {
    /// The additive inverse `(−f)(b)(x) = −f(b)(x)` (available when `A` is a ring).
    pub fn neg(&self) -> Self {
        let f = self.clone();
        Avalanche::new(move |b| f.at(b).neg())
    }

    /// Subtraction `f − g`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }
}

impl<A: Semiring, G: PartialMonoid> std::fmt::Debug for Avalanche<A, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Avalanche(<fn>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::NatAdd;

    type Av = Avalanche<i64, NatAdd>;
    type Poly = MonoidRing<i64, NatAdd>;

    fn sample_points() -> Vec<NatAdd> {
        (0..5).map(NatAdd).collect()
    }

    fn assert_pointwise_eq(f: &Av, g: &Av) {
        for b in sample_points() {
            assert_eq!(f.at(&b), g.at(&b), "differ at binding {b:?}");
        }
    }

    /// A non-constant avalanche element: returns χ_b scaled by (b + 1), i.e. genuinely
    /// depends on the binding context.
    fn context_sensitive() -> Av {
        Avalanche::new(|b: &NatAdd| Poly::singleton(*b, (b.0 + 1) as i64))
    }

    #[test]
    fn lifted_elements_ignore_their_argument() {
        let alpha = Poly::from_pairs(vec![(NatAdd(1), 2), (NatAdd(2), 3)]);
        let f = Av::lift(alpha.clone());
        for b in sample_points() {
            assert_eq!(f.at(&b), alpha);
        }
    }

    #[test]
    fn one_is_the_multiplicative_identity() {
        let f = context_sensitive();
        assert_pointwise_eq(&Av::one().mul(&f), &f);
        assert_pointwise_eq(&f.mul(&Av::one()), &f);
    }

    #[test]
    fn zero_annihilates() {
        let f = context_sensitive();
        for b in sample_points() {
            assert!(Av::zero().mul(&f).at(&b).is_zero());
            assert!(f.mul(&Av::zero()).at(&b).is_zero());
        }
    }

    #[test]
    fn addition_is_pointwise_and_has_inverses() {
        let f = context_sensitive();
        let g = Av::lift(Poly::singleton(NatAdd(1), 7));
        for b in sample_points() {
            assert_eq!(f.add(&g).at(&b), f.at(&b).add(&g.at(&b)));
            assert!(f.sub(&f).at(&b).is_zero());
        }
    }

    #[test]
    fn multiplication_is_associative() {
        let f = context_sensitive();
        let g = Av::lift(Poly::from_pairs(vec![(NatAdd(0), 1), (NatAdd(1), 1)]));
        let h = Avalanche::new(|b: &NatAdd| {
            if b.0 % 2 == 0 {
                Poly::one()
            } else {
                Poly::singleton(NatAdd(2), -1)
            }
        });
        assert_pointwise_eq(&f.mul(&g).mul(&h), &f.mul(&g.mul(&h)));
    }

    #[test]
    fn multiplication_distributes_over_addition() {
        let f = context_sensitive();
        let g = Av::lift(Poly::singleton(NatAdd(1), 2));
        let h = Av::lift(Poly::singleton(NatAdd(2), -3));
        assert_pointwise_eq(&f.mul(&g.add(&h)), &f.mul(&g).add(&f.mul(&h)));
        assert_pointwise_eq(&f.add(&g).mul(&h), &f.mul(&h).add(&g.mul(&h)));
    }

    #[test]
    fn binding_is_passed_sideways() {
        // f produces χ_1 with coefficient 1; g inspects its binding and returns the
        // binding's value as a coefficient. After multiplying, g must have seen b ∗ 1.
        let f = Av::lift(Poly::singleton(NatAdd(1), 1));
        let g = Avalanche::new(|b: &NatAdd| Poly::singleton(NatAdd(0), b.0 as i64));
        let prod = f.mul(&g);
        // At binding 3: f(3) = {1 ↦ 1}; g(3 ∗ 1 = 4) = {0 ↦ 4}; product = {1 ↦ 4}.
        assert_eq!(prod.at(&NatAdd(3)), Poly::singleton(NatAdd(1), 4));
        // Reversing the order changes the result: g(3) = {0 ↦ 3}; f sees binding 3 ∗ 0 = 3
        // but ignores it; product = {1 ↦ 3}. Sideways binding passing is order-sensitive.
        assert_eq!(g.mul(&f).at(&NatAdd(3)), Poly::singleton(NatAdd(1), 3));
    }

    #[test]
    fn lift_is_a_ring_embedding_on_examples() {
        // Proposition 2.8: the parameter-ignoring functions form a sub-ring isomorphic
        // to A[G]: lift(α) ∗ lift(β) = lift(α ∗ β), lift(α) + lift(β) = lift(α + β).
        let alpha = Poly::from_pairs(vec![(NatAdd(0), 2), (NatAdd(1), 1)]);
        let beta = Poly::from_pairs(vec![(NatAdd(1), -1), (NatAdd(2), 5)]);
        assert_pointwise_eq(
            &Av::lift(alpha.clone()).mul(&Av::lift(beta.clone())),
            &Av::lift(alpha.mul(&beta)),
        );
        assert_pointwise_eq(
            &Av::lift(alpha.clone()).add(&Av::lift(beta.clone())),
            &Av::lift(alpha.add(&beta)),
        );
    }
}
