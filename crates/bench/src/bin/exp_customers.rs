//! Experiment E5 — **Examples 5.2 / 6.2 / 6.5**: the customers-by-nation query from its
//! SQL form down to the compiled trigger program, with the delta chain and its degrees,
//! plus a correctness + cost run against the baselines.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_customers`

use dbring::{
    compile, delta, ClassicalIvm, IncrementalView, MaintenanceStrategy, NaiveReeval, UpdateEvent,
};
use dbring_agca::degree::degree;
use dbring_agca::normalize::normalize;
use dbring_bench::{fmt_ns, header, measure_per_update};
use dbring_workloads::{customers_by_nation, WorkloadConfig};
use std::time::Instant;

fn main() {
    let workload = customers_by_nation(WorkloadConfig {
        seed: 5,
        initial_size: 5_000,
        stream_length: 2_000,
        domain_size: 12,
        delete_fraction: 0.2,
    });

    header("Example 5.2: SQL to AGCA");
    println!(
        "SQL   : SELECT C1.cid, SUM(1) FROM C C1, C C2 WHERE C1.nation = C2.nation GROUP BY C1.cid"
    );
    println!("AGCA  : {}", workload.query);
    println!("degree: {}", degree(&workload.query.expr));

    header("Example 6.2 / 6.5: the delta chain");
    let e1 = UpdateEvent::insert("C", &["c1", "n1"]);
    let d1 = delta(&workload.query.expr, &e1);
    let d1n = normalize(&d1).to_expr();
    println!("∆q (+C(c1, n1))          : {d1n}");
    println!(
        "deg q = {}, deg ∆q = {}",
        degree(&workload.query.expr),
        degree(&d1n)
    );
    let e2 = UpdateEvent::insert("C", &["c2", "n2"]);
    let d2 = normalize(&delta(&d1, &e2)).to_expr();
    println!("∆∆q (+C(c1,n1), +C(c2,n2)): {d2}");
    println!("deg ∆∆q = {} (database-independent)", degree(&d2));

    header("compiled trigger program");
    let program = compile(&workload.catalog, &workload.query).unwrap();
    println!("{}", program.describe());

    header("maintenance over a stream (initial |C| = 5000, 2000 updates)");
    let initial_db = workload.initial_database();
    // Bulk-load the initial customers by streaming them through the compiled triggers,
    // then measure the update stream.
    let mut recursive = IncrementalView::new(&workload.catalog, workload.query.clone()).unwrap();
    recursive.apply_all(&workload.initial).unwrap();
    let initial_result = recursive.table();
    recursive.executor_mut().reset_stats();
    let started = Instant::now();
    recursive.apply_all(&workload.stream).unwrap();
    let recursive_ns = started.elapsed().as_nanos() as f64 / workload.stream.len() as f64;

    let mut classical = ClassicalIvm::with_initial_result(
        initial_db.clone(),
        workload.query.clone(),
        initial_result,
    )
    .unwrap();
    let (classical_per, _) =
        measure_per_update(&mut classical, &workload.stream, workload.stream.len());
    let mut naive = NaiveReeval::new(initial_db, workload.query.clone()).unwrap();
    let (naive_per, naive_n) = measure_per_update(&mut naive, &workload.stream, 5);

    // Correctness cross-check between the strategies that saw the whole stream.
    let recursive_table = recursive.table();
    let classical_table = classical.current_result();
    assert_eq!(recursive_table, classical_table, "strategies must agree");

    println!(
        "{:<26} {:>14} {:>20}",
        "strategy", "per update", "ops per update"
    );
    println!(
        "{:<26} {:>14} {:>20.2}",
        "recursive IVM (paper)",
        fmt_ns(recursive_ns),
        recursive.stats().arithmetic_ops() as f64 / workload.stream.len() as f64
    );
    println!(
        "{:<26} {:>14} {:>20}",
        "classical first-order IVM",
        fmt_ns(classical_per.as_nanos() as f64),
        "-"
    );
    println!(
        "{:<26} {:>14} {:>20}   (measured over {} updates)",
        "naive re-evaluation",
        fmt_ns(naive_per.as_nanos() as f64),
        "-",
        naive_n
    );
    println!(
        "\n{} customer groups maintained; view hierarchy holds {} entries",
        recursive_table.len(),
        recursive.total_entries()
    );
}
