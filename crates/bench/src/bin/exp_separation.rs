//! Experiment E7 — the headline complexity separation (Theorem 7.1, measured as its
//! sequential shadow): per-update cost of recursive IVM stays **flat** as the database
//! grows, while classical first-order IVM and naive re-evaluation grow with it.
//!
//! For each workload the initial database size is swept; the stream length is fixed, so
//! any growth in per-update cost is attributable to the database size alone.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_separation`
//! (add `-- --quick` for a faster, smaller sweep)

use dbring_bench::{fmt_ns, header, sweep_point, sweep_results_json, SweepPoint};
use dbring_workloads::{customers_by_nation, rst_sum_join, self_join_count, WorkloadConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[1_000, 2_000, 5_000, 10_000, 20_000]
    };
    let stream_length = if quick { 200 } else { 500 };
    // The baselines' per-update cost grows with the database (that is the point of the
    // experiment), so they are measured over capped update counts — and naive
    // re-evaluation, which materializes the full join result per update, is skipped
    // entirely beyond a few thousand base tuples and reported as "-".
    let naive_size_cap = if quick { 1_000 } else { 2_000 };
    let naive_limit_for = |n: usize| {
        if n <= naive_size_cap {
            if quick {
                5
            } else {
                10
            }
        } else {
            0
        }
    };
    let classical_limit = if quick { 50 } else { 100 };

    let mut all_results: Vec<(&str, Vec<SweepPoint>)> = Vec::new();

    for (name, make) in [
        (
            "self-join count (Example 1.2)",
            (|n: usize, stream: usize| {
                self_join_count(WorkloadConfig {
                    seed: 71,
                    initial_size: n,
                    stream_length: stream,
                    domain_size: 100,
                    delete_fraction: 0.2,
                })
            }) as fn(usize, usize) -> dbring_workloads::Workload,
        ),
        ("customers by nation (Example 5.2)", |n, stream| {
            customers_by_nation(WorkloadConfig {
                seed: 72,
                initial_size: n,
                stream_length: stream,
                domain_size: 12,
                delete_fraction: 0.2,
            })
        }),
        ("three-way sum join (Example 1.3)", |n, stream| {
            rst_sum_join(WorkloadConfig {
                seed: 73,
                initial_size: n,
                stream_length: stream,
                // Scale the join-key domain with the data so join fan-outs stay realistic.
                domain_size: (n / 20).max(50),
                delete_fraction: 0.1,
            })
        }),
    ] {
        header(name);
        println!(
            "{:>10} | {:>14} {:>10} | {:>14} | {:>14}",
            "initial |D|", "recursive/upd", "ops/upd", "classical/upd", "naive/upd"
        );
        let mut points = Vec::new();
        for &n in sizes {
            let workload = make(n, stream_length);
            let point = sweep_point(&workload, classical_limit, naive_limit_for(n));
            println!(
                "{:>10} | {:>14} {:>10.1} | {:>14} | {:>14}",
                n,
                fmt_ns(point.recursive_ns),
                point.recursive_ops,
                fmt_ns(point.classical_ns),
                fmt_ns(point.naive_ns)
            );
            points.push(point);
        }
        summarize(&points);
        all_results.push((name, points));
    }

    // Machine-readable dump for EXPERIMENTS.md bookkeeping.
    let json = sweep_results_json(&all_results);
    let path = std::env::temp_dir().join("dbring_separation.json");
    if std::fs::write(&path, json).is_ok() {
        println!("\nraw results written to {}", path.display());
    }
}

fn summarize(points: &[SweepPoint]) {
    if points.len() < 2 {
        return;
    }
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    let growth = |a: f64, b: f64| if a > 0.0 { b / a } else { f64::NAN };
    let size_growth = last.initial_size as f64 / first.initial_size as f64;
    let last_naive = points
        .iter()
        .rev()
        .find(|p| !p.naive_ns.is_nan())
        .unwrap_or(first);
    println!(
        "database grew {:.0}x: recursive IVM per-update cost changed {:.2}x \
         (ops {:.2}x), classical IVM {:.2}x, naive {:.2}x (over its measured range, up to |D| = {})",
        size_growth,
        growth(first.recursive_ns, last.recursive_ns),
        growth(first.recursive_ops, last.recursive_ops),
        growth(first.classical_ns, last.classical_ns),
        growth(first.naive_ns, last_naive.naive_ns),
        last_naive.initial_size,
    );
}
