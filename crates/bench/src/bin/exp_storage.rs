//! Experiment E9 — what the storage backend costs: per-update latency and memory proxy
//! of the lowered executor on `HashViewStorage` vs `OrderedViewStorage`, swept over
//! initial database sizes.
//!
//! Both backends execute the same lowered plan and perform identical ring operations
//! (asserted per point), so the latency ratio isolates the physical storage trade-off:
//! O(1) hash probes + one parallel hash index per registered pattern, against O(log n)
//! ordered probes where prefix patterns ride the primary sort order for free. The
//! `entries` / `idx-entries` columns are the machine-independent memory proxy — compare
//! `idx-entries` across the backends to see the index structure the ordered layout
//! avoids building.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_storage`
//! (add `-- --quick` for a faster, smaller sweep)

use dbring_bench::{fmt_ns, header, storage_point, write_bench_json, BenchRow, StoragePoint};
use dbring_workloads::{
    customers_by_nation, orders_lineitems, rst_sum_join, self_join_count, WorkloadConfig,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[1_000, 5_000, 20_000]
    };
    let stream_length = if quick { 300 } else { 1_000 };
    let mut rows: Vec<BenchRow> = Vec::new();

    for (name, slug, make) in [
        (
            "self-join count (Example 1.2, probe-only)",
            "self-join",
            (|n: usize, stream: usize| {
                self_join_count(WorkloadConfig {
                    seed: 91,
                    initial_size: n,
                    stream_length: stream,
                    domain_size: 100,
                    delete_fraction: 0.2,
                })
            }) as fn(usize, usize) -> dbring_workloads::Workload,
        ),
        (
            "customers by nation (Example 5.2)",
            "customers-by-nation",
            |n, stream| {
                customers_by_nation(WorkloadConfig {
                    seed: 92,
                    initial_size: n,
                    stream_length: stream,
                    domain_size: 12,
                    delete_fraction: 0.2,
                })
            },
        ),
        (
            "three-way sum join (Example 1.3)",
            "rst-join",
            |n, stream| {
                rst_sum_join(WorkloadConfig {
                    seed: 93,
                    initial_size: n,
                    stream_length: stream,
                    domain_size: (n / 20).max(50),
                    delete_fraction: 0.1,
                })
            },
        ),
        (
            "orders × lineitems (FK join)",
            "orders-lineitems",
            |n, stream| {
                orders_lineitems(WorkloadConfig {
                    seed: 94,
                    initial_size: n,
                    stream_length: stream,
                    domain_size: (n / 10).max(20),
                    delete_fraction: 0.1,
                })
            },
        ),
    ] {
        header(name);
        println!(
            "{:>11} | {:>11} | {:>11} | {:>7} | {:>8} | {:>8} | {:>13} | {:>13}",
            "initial |D|",
            "hash/upd",
            "ordered/upd",
            "ratio",
            "ops/upd",
            "entries",
            "hash idx-ent",
            "ord idx-ent"
        );
        let mut points: Vec<StoragePoint> = Vec::new();
        for &n in sizes {
            let workload = make(n, stream_length);
            let point = storage_point(&workload);
            println!(
                "{:>11} | {:>11} | {:>11} | {:>6.2}x | {:>8.1} | {:>8} | {:>13} | {:>13}",
                n,
                fmt_ns(point.hash_ns),
                fmt_ns(point.ordered_ns),
                point.ordered_over_hash(),
                point.ops_per_update,
                point.hash_footprint.entries,
                point.hash_footprint.index_entries,
                point.ordered_footprint.index_entries,
            );
            // `batch_size` carries the sweep's x-axis (initial |D|); both series
            // share the per-update op count, which is identical across backends.
            for (metric, ns) in [("hash_ns", point.hash_ns), ("ordered_ns", point.ordered_ns)] {
                rows.push(BenchRow {
                    series: format!("storage/{slug}/{metric}"),
                    batch_size: n,
                    ns_per_update: ns,
                    ops_per_update: point.ops_per_update,
                });
            }
            points.push(point);
        }
        let mean_ratio = points
            .iter()
            .map(StoragePoint::ordered_over_hash)
            .sum::<f64>()
            / points.len() as f64;
        println!(
            "mean ordered/hash latency ratio {mean_ratio:.2}x (identical ring work on both \
             backends; entries always match, index entries differ by layout)"
        );
    }

    match write_bench_json("exp_storage", &rows) {
        Ok(path) => println!("\nwrote {} rows to {path}", rows.len()),
        Err(error) => println!("\nfailed to write bench json: {error}"),
    }
}
