//! Experiment E14 — what interned fixed-width keys buy: per-update latency of the
//! interned [`BatchNormalizer`](dbring::BatchNormalizer) batch path against the classic
//! `DeltaBatch::from_updates` comparison sort AND against per-tuple `apply_all`, on the
//! E10 hot-key degree-1 workload whose honest verdict was "batching saves 6× the work
//! but loses wall-clock". The recorded gate of PR 8: that row must now flip to a
//! wall-clock **win** (interned speedup vs per-tuple > 1.0), which this binary asserts
//! in full mode (with re-measurement retries, since wall-clock gates are noisy).
//!
//! Parity — identical tables and bit-identical `ExecStats` between the classic and
//! interned paths — is asserted inside every `intern_point`, in `--quick` CI runs too.
//!
//! A string-keyed workload at tiny batch sizes is swept as well, because that is where
//! interning can lose (every fresh string pays a hash + id allocation that the classic
//! comparison sort never does); EXPERIMENTS.md records whatever this prints.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_intern`
//! (add `-- --quick` for the CI parity smoke; the wall-clock gate only runs full)

use dbring::{HashViewStorage, OrderedViewStorage};
use dbring_bench::{fmt_ns, header, intern_point, write_bench_json, BenchRow, InternPoint};
use dbring_workloads::{customers_by_nation, sales_revenue_int, Workload, WorkloadConfig};

fn sweep<S: dbring::ViewStorage>(
    backend: &str,
    workload: &Workload,
    sizes: &[usize],
) -> Vec<InternPoint> {
    let points: Vec<InternPoint> = sizes
        .iter()
        .map(|&k| intern_point::<S>(workload, k))
        .collect();
    println!(
        "[{backend}] {:>6} | {:>12} | {:>12} | {:>12} | {:>8} | {:>10} | {:>9}",
        "batch", "per-tuple/upd", "classic/upd", "interned/upd", "vs pt", "vs classic", "b ops/upd"
    );
    for p in &points {
        println!(
            "[{backend}] {:>6} | {:>12} | {:>12} | {:>12} | {:>7.2}x | {:>9.2}x | {:>9.1}",
            p.batch_size,
            fmt_ns(p.per_tuple_ns),
            fmt_ns(p.classic_ns),
            fmt_ns(p.interned_ns),
            p.speedup_vs_per_tuple(),
            p.speedup_vs_classic(),
            p.batch_ops,
        );
    }
    points
}

fn collect_rows(case: &str, backend: &str, points: &[InternPoint], rows: &mut Vec<BenchRow>) {
    for p in points {
        rows.push(BenchRow {
            series: format!("{case}/{backend}/per_tuple"),
            batch_size: p.batch_size,
            ns_per_update: p.per_tuple_ns,
            ops_per_update: p.per_tuple_ops,
        });
        rows.push(BenchRow {
            series: format!("{case}/{backend}/classic"),
            batch_size: p.batch_size,
            ns_per_update: p.classic_ns,
            ops_per_update: p.batch_ops,
        });
        rows.push(BenchRow {
            series: format!("{case}/{backend}/interned"),
            batch_size: p.batch_size,
            ns_per_update: p.interned_ns,
            ops_per_update: p.batch_ops,
        });
    }
}

/// The E10 hot-key degree-1 row (same config as `exp_batch`): per-customer revenue
/// over 8 hot customers, 20% deletes.
fn hot_key_revenue(quick: bool) -> Workload {
    let (initial, stream) = if quick { (500, 4_096) } else { (2_000, 16_384) };
    sales_revenue_int(WorkloadConfig {
        seed: 101,
        initial_size: initial,
        stream_length: stream,
        domain_size: 8,
        delete_fraction: 0.2,
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[256, 1_024]
    } else {
        &[1, 64, 256, 1_024, 4_096]
    };

    let mut rows: Vec<BenchRow> = Vec::new();

    header("E14: interned fixed-width keys vs classic normalization (E10 hot-key row)");
    let workload = hot_key_revenue(quick);
    let mut hash_points = sweep::<HashViewStorage>("hash", &workload, sizes);
    let mut ordered_points = sweep::<OrderedViewStorage>("ordered", &workload, sizes);

    if !quick {
        // The recorded gate: the hot-key degree-1 row flips to a wall-clock win.
        // Wall-clock gates are noisy, so re-measure (fresh workload each attempt,
        // like exp_ring) before declaring a regression.
        for attempt in 0..3 {
            let hash_best = hash_points
                .iter()
                .map(InternPoint::speedup_vs_per_tuple)
                .fold(f64::MIN, f64::max);
            let ordered_best = ordered_points
                .iter()
                .map(InternPoint::speedup_vs_per_tuple)
                .fold(f64::MIN, f64::max);
            if hash_best > 1.0 && ordered_best > 1.0 {
                println!(
                    "gate: hot-key row flips to a wall-clock win \
                     (best interned speedup vs per-tuple: hash {hash_best:.2}x, \
                     ordered {ordered_best:.2}x)"
                );
                break;
            }
            assert!(
                attempt < 2,
                "E14 gate failed after 3 attempts: interned batch path must beat \
                 per-tuple wall-clock on the hot-key row (hash best {hash_best:.2}x, \
                 ordered best {ordered_best:.2}x)"
            );
            println!("gate attempt {} inconclusive; re-measuring", attempt + 1);
            let retry = hot_key_revenue(quick);
            hash_points = sweep::<HashViewStorage>("hash", &retry, sizes);
            ordered_points = sweep::<OrderedViewStorage>("ordered", &retry, sizes);
        }
    }
    collect_rows("revenue_hot", "hash", &hash_points, &mut rows);
    collect_rows("revenue_hot", "ordered", &ordered_points, &mut rows);

    // Where interning can lose: string group keys at tiny batch sizes — every fresh
    // string pays an interner hash that the classic comparison sort never does, and a
    // batch of 1 amortizes nothing. Recorded honestly, not gated.
    header("string keys at small batch sizes (where interning may lose)");
    let strings = customers_by_nation(WorkloadConfig {
        seed: 102,
        initial_size: if quick { 200 } else { 1_000 },
        stream_length: if quick { 1_024 } else { 4_096 },
        domain_size: 12,
        delete_fraction: 0.2,
    });
    let string_sizes: &[usize] = if quick { &[4] } else { &[1, 4, 16] };
    let string_points = sweep::<HashViewStorage>("hash", &strings, string_sizes);
    collect_rows("nation_strings", "hash", &string_points, &mut rows);

    let path = write_bench_json("exp_intern", &rows).expect("write BENCH_exp_intern.json");
    println!("\nwrote {path} ({} rows)", rows.len());
    if quick {
        println!("parity: interned == classic (tables + exact ExecStats) held on every point");
    }
}
