//! Experiment E13 — what failure atomicity costs: total per-update cost of a ring
//! ingesting one chunked stream with staged (failure-atomic) batches — the default
//! since the stage/commit split — against the same ring built
//! `without_staged_ingest` (byte-for-byte the pre-staging direct path).
//!
//! Staging applies each batch normally while logging one pre-image per map write,
//! then drops the log on commit; on a failure it restores every write bit-exactly.
//! On the failure-free streams measured here the *entire* cost is therefore the undo
//! log: its allocation, its pre-image probes, and its drop. The acceptance target
//! for this repo is staged ingest within ~5% of direct ingest on the dashboard
//! workload.
//!
//! Every point asserts, per view, that the staged ring reaches *identical* result
//! tables and *exactly* equal `ExecStats` — staging must never change what work the
//! executor does, only remember how to undo it (the CI smoke runs `--quick`).
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_faults`
//! (add `-- --quick` for a faster, smaller sweep)

use dbring::{HashViewStorage, OrderedViewStorage};
use dbring_bench::{fault_point, fmt_ns, header, write_bench_json, BenchRow, FaultPoint};
use dbring_workloads::{sales_dashboard, MultiViewWorkload, WorkloadConfig};

const THREADS: &[usize] = &[1, 4];
const BATCHES_QUICK: &[usize] = &[1, 64];
const BATCHES_FULL: &[usize] = &[1, 64, 512];

fn sweep<S: dbring::ViewStorage + Send + 'static>(
    backend: &str,
    workload: &MultiViewWorkload,
    batches: &[usize],
    rows: &mut Vec<BenchRow>,
) -> Vec<FaultPoint> {
    let mut points = Vec::new();
    println!(
        "[{backend}] {:>7} | {:>5} | {:>5} | {:>10} | {:>10} | {:>8}",
        "threads", "views", "batch", "direct/upd", "staged/upd", "overhead"
    );
    let views = workload.views.len();
    for &batch in batches {
        for &threads in THREADS {
            let p = fault_point::<S>(workload, views, batch, threads);
            println!(
                "[{backend}] {:>7} | {:>5} | {:>5} | {:>10} | {:>10} | {:>7.3}x",
                p.threads,
                p.views,
                p.batch_size,
                fmt_ns(p.direct_ns),
                fmt_ns(p.staged_ns),
                p.overhead(),
            );
            // `ops_per_update` carries the staged/direct overhead ratio on the
            // staged row so the trajectory is trackable as one number.
            for (metric, ns, ops) in [
                ("direct_ns", p.direct_ns, 0.0),
                ("staged_ns", p.staged_ns, p.overhead()),
            ] {
                rows.push(BenchRow {
                    series: format!("faults/{backend}/threads{}/{metric}", p.threads),
                    batch_size: p.batch_size,
                    ns_per_update: ns,
                    ops_per_update: ops,
                });
            }
            points.push(p);
        }
    }
    points
}

fn report_worst(label: &str, points: &[FaultPoint]) {
    if let Some(worst) = points
        .iter()
        .max_by(|a, b| a.overhead().total_cmp(&b.overhead()))
    {
        println!(
            "[{label}] worst staging overhead: {:.3}x at batch {} with {} thread(s) \
             ({} direct vs {} staged per update)",
            worst.overhead(),
            worst.batch_size,
            worst.threads,
            fmt_ns(worst.direct_ns),
            fmt_ns(worst.staged_ns),
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dashboard = sales_dashboard(if quick {
        WorkloadConfig {
            seed: 42,
            initial_size: 400,
            stream_length: 800,
            domain_size: 50,
            delete_fraction: 0.2,
        }
    } else {
        WorkloadConfig {
            seed: 42,
            initial_size: 4_000,
            stream_length: 24_000,
            domain_size: 100,
            delete_fraction: 0.2,
        }
    });
    let batches = if quick { BATCHES_QUICK } else { BATCHES_FULL };

    header(&format!(
        "E13 — the price of failure-atomic ingest: staged vs direct batches on {} \
         ({} views, |initial| = {}, |stream| = {}; every point asserts per-view \
         table equality and exact ExecStats parity)",
        dashboard.name,
        dashboard.views.len(),
        dashboard.initial.len(),
        dashboard.stream.len(),
    ));
    println!(
        "batch 1 exercises the per-update staging path; larger batches amortize the \
         undo log across the consolidated flush"
    );

    let mut rows: Vec<BenchRow> = Vec::new();
    let mut points = sweep::<HashViewStorage>("hash", &dashboard, batches, &mut rows);
    points.extend(sweep::<OrderedViewStorage>(
        "ordered", &dashboard, batches, &mut rows,
    ));
    report_worst("dashboard", &points);

    println!(
        "\nparity held at every point above ({} measured); timing is reported as \
         measured — see EXPERIMENTS.md E13 for recorded sweeps and discussion",
        points.len()
    );

    match write_bench_json("exp_faults", &rows) {
        Ok(path) => println!("wrote {} rows to {path}", rows.len()),
        Err(error) => println!("failed to write bench json: {error}"),
    }
}
