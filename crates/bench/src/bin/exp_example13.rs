//! Experiment E3 — **Example 1.3**: factorization of the delta of
//! `SELECT sum(A*F) FROM R, S, T WHERE B = C AND D = E`.
//!
//! Shows (a) the compiled program, whose `±S` statements are a product of two single-key
//! lookups `(∆Q)₁(c) * (∆Q)₂(d)`; (b) that the factorized views stay *linear* in the
//! active-domain size, while the unfactorized `∆Q(c, d)` view the paper warns about would
//! be quadratic; and (c) that per-update work stays flat as the data grows.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_example13`

use dbring::{compile, parse_sql, IncrementalView, Sign};
use dbring_bench::{fmt_ns, header};
use dbring_compiler::RhsFactor;
use dbring_workloads::{rst_sum_join, WorkloadConfig};
use std::time::Instant;

fn main() {
    let catalog = rst_sum_join(WorkloadConfig::small(1)).catalog;
    let query = parse_sql(
        "SELECT SUM(A * F) AS q FROM R, S, T WHERE B = C AND D = E",
        &catalog,
    )
    .unwrap();
    let program = compile(&catalog, &query).unwrap();

    header("compiled program for Example 1.3");
    println!("{}", program.describe());

    let s_stmt = program
        .trigger("S", Sign::Insert)
        .unwrap()
        .statements
        .iter()
        .find(|s| s.target == program.output)
        .unwrap();
    let lookups = s_stmt
        .factors
        .iter()
        .filter(|f| matches!(f, RhsFactor::MapLookup { .. }))
        .count();
    println!(
        "the +S statement for the output map uses {lookups} independent lookups \
         (paper: (∆Q)₁(c) * (∆Q)₂(d))\n"
    );

    header("view sizes and per-update cost as the active domain grows");
    println!(
        "{:>8} | {:>14} | {:>22} | {:>16} | {:>12}",
        "domain", "view entries", "unfactorized ∆Q size", "ops per update", "ns per update"
    );
    for domain in [50usize, 100, 200, 400, 800] {
        let workload = rst_sum_join(WorkloadConfig {
            seed: 13,
            initial_size: 4 * domain,
            stream_length: 2_000,
            domain_size: domain,
            delete_fraction: 0.1,
        });
        let mut view = IncrementalView::new(&workload.catalog, workload.query.clone())
            .unwrap()
            .with_initial_database(&workload.initial_database())
            .unwrap();
        view.executor_mut().reset_stats();
        let started = Instant::now();
        view.apply_all(&workload.stream).unwrap();
        let per_update_ns = started.elapsed().as_nanos() as f64 / workload.stream.len() as f64;
        let per_update_ops = view.stats().arithmetic_ops() as f64 / workload.stream.len() as f64;
        // The unfactorized first delta wrt S is a function of the pair (c, d): its tabular
        // representation has one entry per pair of join-key values — quadratic in the
        // domain — which is exactly what factorization avoids.
        println!(
            "{:>8} | {:>14} | {:>22} | {:>16.2} | {:>12}",
            domain,
            view.total_entries(),
            domain * domain,
            per_update_ops,
            fmt_ns(per_update_ns)
        );
    }
    println!(
        "\nfactorized views grow linearly with the domain; the hypothetical unfactorized \
         ∆Q view grows quadratically; per-update arithmetic stays flat"
    );
}
