//! Experiment E8 — what lowering buys: per-update latency of the slot-resolved executor
//! vs the string-named reference interpreter, swept over initial database sizes.
//!
//! Both paths execute the same compiled trigger program and perform identical ring
//! operations (the sweep asserts this), so the ratio isolates pure interpreter
//! overhead: variable-name hashing, per-binding environment clones, per-call
//! bound-position derivation, and per-probe key allocation — everything the lowering
//! stage (`dbring_compiler::lower`) eliminates.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_lowering`
//! (add `-- --quick` for a faster, smaller sweep)

use dbring_bench::{fmt_ns, header, lowering_point, LoweringPoint};
use dbring_workloads::{customers_by_nation, rst_sum_join, self_join_count, WorkloadConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[1_000, 5_000, 20_000]
    };
    let stream_length = if quick { 300 } else { 1_000 };

    for (name, make) in [
        (
            "self-join count (Example 1.2)",
            (|n: usize, stream: usize| {
                self_join_count(WorkloadConfig {
                    seed: 81,
                    initial_size: n,
                    stream_length: stream,
                    domain_size: 100,
                    delete_fraction: 0.2,
                })
            }) as fn(usize, usize) -> dbring_workloads::Workload,
        ),
        ("customers by nation (Example 5.2)", |n, stream| {
            customers_by_nation(WorkloadConfig {
                seed: 82,
                initial_size: n,
                stream_length: stream,
                domain_size: 12,
                delete_fraction: 0.2,
            })
        }),
        ("three-way sum join (Example 1.3)", |n, stream| {
            rst_sum_join(WorkloadConfig {
                seed: 83,
                initial_size: n,
                stream_length: stream,
                domain_size: (n / 20).max(50),
                delete_fraction: 0.1,
            })
        }),
    ] {
        header(name);
        println!(
            "{:>10} | {:>13} | {:>14} | {:>8} | {:>8}",
            "initial |D|", "lowered/upd", "interpret/upd", "speedup", "ops/upd"
        );
        let mut points: Vec<LoweringPoint> = Vec::new();
        for &n in sizes {
            let workload = make(n, stream_length);
            let point = lowering_point(&workload);
            println!(
                "{:>10} | {:>13} | {:>14} | {:>7.2}x | {:>8.1}",
                n,
                fmt_ns(point.lowered_ns),
                fmt_ns(point.interpreted_ns),
                point.speedup(),
                point.ops_per_update
            );
            points.push(point);
        }
        let mean_speedup =
            points.iter().map(LoweringPoint::speedup).sum::<f64>() / points.len() as f64;
        println!("mean speedup {mean_speedup:.2}x (identical ring work on both paths)");
    }
}
