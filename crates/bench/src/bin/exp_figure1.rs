//! Experiment E1 — regenerates **Figure 1** of the paper: the seven memoized delta values
//! of `f(x) = x²` under `U = {+1, −1}`, for `x = −2 … 4`, and verifies that maintaining
//! them under updates uses only additions of memoized values.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_figure1`

use dbring::{Polynomial, RecursiveMemo};
use dbring_bench::header;

fn main() {
    header("Figure 1: recursive memoization of deltas for f(x) = x^2");
    let f = Polynomial::monomial(1i64, 2);
    let updates = vec![1i64, -1];

    println!(
        "{:>4} | {:>5} | {:>9} {:>9} | {:>11} {:>11} {:>11} {:>11}",
        "x", "f(x)", "Δf(,+1)", "Δf(,-1)", "Δ²(+1,+1)", "Δ²(+1,-1)", "Δ²(-1,+1)", "Δ²(-1,-1)"
    );
    for x in -2i64..=4 {
        let memo = RecursiveMemo::new(&f, &x, updates.clone());
        println!(
            "{:>4} | {:>5} | {:>9} {:>9} | {:>11} {:>11} {:>11} {:>11}",
            x,
            memo.current(),
            memo.value(&[0]).unwrap(),
            memo.value(&[1]).unwrap(),
            memo.value(&[0, 0]).unwrap(),
            memo.value(&[0, 1]).unwrap(),
            memo.value(&[1, 0]).unwrap(),
            memo.value(&[1, 1]).unwrap(),
        );
    }

    header("maintenance cost check (Section 1.1)");
    // Walk x from 0 up to 10_000 and back; the memoized table must track f exactly while
    // performing exactly 3 additions per step and zero polynomial evaluations.
    let mut memo = RecursiveMemo::new(&f, &0, updates);
    let mut x = 0i64;
    let steps = 10_000;
    for _ in 0..steps {
        memo.apply(0);
        x += 1;
    }
    for _ in 0..(2 * steps) {
        memo.apply(1);
        x -= 1;
    }
    assert_eq!(memo.current(), f.eval(&x));
    println!(
        "after {} updates: f({x}) = {} (exact), additions performed = {} ({} per update), \
         memoized values = {}",
        3 * steps,
        memo.current(),
        memo.additions(),
        memo.additions() / (3 * steps as u64),
        memo.memoized_values()
    );
    println!("paper: 7 memoized values, 3 of which receive one addition per update — reproduced");
}
