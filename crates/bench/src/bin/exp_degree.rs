//! Experiment E6 — **Theorem 6.4**: the degree of the delta of a simple-condition AGCA
//! query is `max(0, deg(q) − 1)`. Prints, for a suite of queries, the degree at every
//! level of the recursive delta tower and the number of views the unfactorized scheme
//! would materialize.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_degree`

use dbring::{parse_expr, Database};
use dbring_agca::degree::degree;
use dbring_bench::header;
use dbring_delta::build_tower;

fn main() {
    let mut catalog = Database::new();
    catalog.declare("C", &["cid", "nation"]).unwrap();
    catalog.declare("R", &["A", "B"]).unwrap();
    catalog.declare("S", &["C", "D"]).unwrap();
    catalog.declare("T", &["E", "F"]).unwrap();
    catalog.declare("U", &["A"]).unwrap();

    let suite = [
        ("count(C)", "Sum(C(c, n))"),
        ("sum of values", "Sum(C(c, n) * n)"),
        ("self-join count (Ex. 1.2)", "Sum(U(x) * U(y) * (x = y))"),
        ("customers by nation (Ex. 6.2)", "Sum(C(c, n) * C(c2, n))"),
        (
            "three-way join (Ex. 1.3)",
            "Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)",
        ),
        (
            "four-way self join",
            "Sum(U(a) * U(b) * U(c) * U(d) * (a = b) * (c = d))",
        ),
        ("filtered sum", "Sum(C(c, n) * (n >= 3) * n)"),
    ];

    header("Theorem 6.4: degrees along the recursive delta chain");
    println!(
        "{:<32} {:>7} | {:<24} | {:>14}",
        "query", "deg(q)", "degrees per delta level", "views (unfact.)"
    );
    for (name, text) in suite {
        let q = parse_expr(text).unwrap();
        let tower = build_tower(&catalog, &q, 10);
        let degrees = tower.degrees_per_level();
        // Check the theorem: each level drops the degree by exactly one until zero.
        for (level, pair) in degrees.windows(2).enumerate() {
            assert_eq!(
                pair[1],
                pair[0].saturating_sub(1),
                "degree must drop by one at level {} of {}",
                level + 1,
                name
            );
        }
        assert_eq!(degrees.len(), degree(&q) + 1, "tower depth is deg(q)+1");
        println!(
            "{:<32} {:>7} | {:<24} | {:>14}",
            name,
            degree(&q),
            degrees
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(" -> "),
            tower.view_count()
        );
    }
    println!(
        "\nevery chain ends at degree 0 after deg(q) deltas — the k-th delta depends only on \
         the update, which is what makes the trigger programs database-free (Theorem 7.1)"
    );
}
