//! `dbring-lint`: the workspace's static-analysis gate.
//!
//! Compiles every workload query, every `sales-dashboard` view, every example query
//! and the pipeline property-test corpus, runs the plan auditor
//! ([`dbring::audit_program`]) over each compiled program, prints every diagnostic
//! with its stable `DBxxx` code, and exits nonzero if any plan carries an
//! Error-severity finding. CI runs this over every push, so a compiler change that
//! starts emitting dead binds, unused index registrations or ordering hazards fails
//! the build with the offending plan named — instead of shipping as a silent
//! performance or correctness regression.
//!
//! Output format, one line per diagnostic:
//!
//! ```text
//! workload/self-join-count: DB007 info [on +R stmt 0]: …
//! ```
//!
//! followed by a one-line summary (`dbring-lint: 27 plans audited, 0 errors, …`).

use dbring::{audit_program, compile, parse_query, parse_sql, Catalog, Severity};
use dbring_workloads::{all_workloads, sales_dashboard, WorkloadConfig};

/// One compile-and-audit target: where it came from, the schema it compiles
/// against, and its query.
struct Target {
    label: String,
    catalog: Catalog,
    query: dbring::Query,
}

/// The workload corpus: every single-view workload query plus every view of the
/// multi-view dashboard. Stream generation parameters are irrelevant to the plans,
/// so the smallest config does.
fn workload_targets() -> Vec<Target> {
    let config = WorkloadConfig::small(1);
    let mut targets: Vec<Target> = all_workloads(config)
        .into_iter()
        .map(|w| Target {
            label: format!("workload/{}", w.name),
            catalog: w.catalog,
            query: w.query,
        })
        .collect();
    let dashboard = sales_dashboard(config);
    for (view, query) in dashboard.views {
        targets.push(Target {
            label: format!("workload/{}/{view}", dashboard.name),
            catalog: dashboard.catalog.clone(),
            query,
        });
    }
    targets
}

/// The queries the `examples/` programs maintain, compiled against the same schemas
/// the examples declare.
fn example_targets() -> Vec<Target> {
    let mut targets = Vec::new();

    let mut sales = Catalog::new();
    sales.declare("Sales", &["cust", "price", "qty"]).unwrap();
    for (name, sql) in [
        (
            "quickstart/revenue",
            "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
        ),
        (
            "quickstart/orders",
            "SELECT cust, SUM(1) AS orders FROM Sales GROUP BY cust",
        ),
        (
            "quickstart/qty",
            "SELECT cust, SUM(qty) AS qty FROM Sales GROUP BY cust",
        ),
    ] {
        targets.push(Target {
            label: format!("example/{name}"),
            catalog: sales.clone(),
            query: parse_sql(sql, &sales).unwrap(),
        });
    }

    let mut dashboard = Catalog::new();
    dashboard
        .declare("Sales", &["cust", "cents", "qty"])
        .unwrap();
    dashboard
        .declare("Returns", &["cust", "cents", "qty"])
        .unwrap();
    for (name, sql) in [
        (
            "ring_dashboard/revenue",
            "SELECT cust, SUM(cents * qty) AS revenue FROM Sales GROUP BY cust",
        ),
        (
            "ring_dashboard/orders",
            "SELECT cust, SUM(1) AS orders FROM Sales GROUP BY cust",
        ),
        (
            "ring_dashboard/refunds",
            "SELECT cust, SUM(cents * qty) AS refunded FROM Returns GROUP BY cust",
        ),
        (
            "ring_dashboard/units",
            "SELECT cust, SUM(qty) AS units FROM Sales GROUP BY cust",
        ),
    ] {
        targets.push(Target {
            label: format!("example/{name}"),
            catalog: dashboard.clone(),
            query: parse_sql(sql, &dashboard).unwrap(),
        });
    }

    let mut unary = Catalog::new();
    unary.declare("R", &["A"]).unwrap();
    targets.push(Target {
        label: "example/customer_nations/q".into(),
        catalog: unary,
        query: parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap(),
    });

    targets
}

/// The `tests/pipeline_properties.rs` corpus q1–q8 — the hand-picked queries the
/// end-to-end property tests run, kept in lockstep here so the gate covers them.
fn pipeline_corpus_targets() -> Vec<Target> {
    let mut catalog = Catalog::new();
    catalog.declare("C", &["cid", "nation"]).unwrap();
    catalog.declare("R", &["A"]).unwrap();
    catalog.declare("S", &["A"]).unwrap();
    [
        "q1[n] := Sum(C(c, n))",
        "q2[c] := Sum(C(c, n) * C(c2, n))",
        "q3 := Sum(C(c, n) * C(c2, n2) * (n = n2))",
        "q4 := Sum(R(x) * R(y) * (x = y))",
        "q5 := Sum(R(x) * S(x) * x)",
        "q6[c] := Sum(C(c, n) * R(n))",
        "q7 := Sum(C(c, n) * (n >= 2) * n)",
        "q8 := Sum(C(c, n) * C(c2, n) * n)",
    ]
    .iter()
    .map(|text| Target {
        label: format!(
            "corpus/{}",
            text.split_whitespace().next().unwrap_or("query")
        ),
        catalog: catalog.clone(),
        query: parse_query(text).unwrap(),
    })
    .collect()
}

fn main() {
    let mut targets = workload_targets();
    targets.extend(example_targets());
    targets.extend(pipeline_corpus_targets());

    let (mut plans, mut errors, mut warnings, mut infos) = (0usize, 0usize, 0usize, 0usize);
    for target in &targets {
        let program = match compile(&target.catalog, &target.query) {
            Ok(program) => program,
            Err(e) => {
                // A corpus query failing to compile is itself a gate failure.
                println!("{}: compile error: {e}", target.label);
                errors += 1;
                continue;
            }
        };
        plans += 1;
        for diag in audit_program(&program) {
            match diag.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Info => infos += 1,
            }
            println!("{}: {diag}", target.label);
        }
    }

    println!(
        "dbring-lint: {plans} plans audited, {errors} errors, {warnings} warnings, {infos} infos"
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
