//! Experiment E12 — what parallel ingest buys: total per-update cost of a ring
//! ingesting one chunked stream sequentially (`ingest_threads(1)`, byte-for-byte the
//! pre-parallelism code path) against the same ring at thread budgets of 2, 4 and 8.
//!
//! Two nested levels of parallelism are exercised:
//!
//! * **Across views** — `sales-dashboard` maintains six standing views; a shared
//!   batch fans out to the touched views on a scoped thread pool.
//! * **Within a view** — `sales-revenue-xl` maintains a *single* wide view over a
//!   large key domain; the only parallelism available is key-range sharding of each
//!   batched flush (`ViewStorage::apply_sorted_sharded`).
//!
//! Every point asserts, per view, that the parallel ring reaches *identical* result
//! tables and *exactly* equal `ExecStats` — parallelism relocates work across
//! threads, it must never change what work is done (the CI smoke runs `--quick`).
//! The parity assertions are the gate; the timing columns are reported honestly, and
//! on machines with few cores (`std::thread::available_parallelism`) speedups at or
//! below 1.0x are the expected result, not a failure.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_parallel`
//! (add `-- --quick` for a faster, smaller sweep)

use dbring::{HashViewStorage, OrderedViewStorage};
use dbring_bench::{fmt_ns, header, parallel_point, write_bench_json, BenchRow, ParallelPoint};
use dbring_workloads::{sales_dashboard, sales_revenue_int, MultiViewWorkload, WorkloadConfig};

const THREADS: &[usize] = &[1, 2, 4, 8];

fn sweep<S: dbring::ViewStorage + Send + 'static>(
    backend: &str,
    workload: &MultiViewWorkload,
    views: usize,
    batch_size: usize,
) -> Vec<ParallelPoint> {
    let mut points = Vec::new();
    println!(
        "[{backend}] {:>7} | {:>5} | {:>5} | {:>10} | {:>10} | {:>7}",
        "threads", "views", "batch", "seq/upd", "par/upd", "speedup"
    );
    for &threads in THREADS {
        let p = parallel_point::<S>(workload, views, batch_size, threads);
        println!(
            "[{backend}] {:>7} | {:>5} | {:>5} | {:>10} | {:>10} | {:>6.2}x",
            p.threads,
            p.views,
            p.batch_size,
            fmt_ns(p.sequential_ns),
            fmt_ns(p.parallel_ns),
            p.speedup(),
        );
        points.push(p);
    }
    points
}

/// Flattens one sweep into bench rows: the parallel latency per thread budget, plus
/// the t1 sequential baseline as its own series. Ops per update are not measured
/// here (parallelism relocates work, parity is asserted inside every point), so that
/// column is emitted as null.
fn bench_rows(label: &str, backend: &str, points: &[ParallelPoint]) -> Vec<BenchRow> {
    let mut rows: Vec<BenchRow> = points
        .iter()
        .map(|p| BenchRow {
            series: format!("{label}/{backend}/t{}", p.threads),
            batch_size: p.batch_size,
            ns_per_update: p.parallel_ns,
            ops_per_update: f64::NAN,
        })
        .collect();
    if let Some(p) = points.first() {
        rows.push(BenchRow {
            series: format!("{label}/{backend}/sequential"),
            batch_size: p.batch_size,
            ns_per_update: p.sequential_ns,
            ops_per_update: f64::NAN,
        });
    }
    rows
}

fn report_best(label: &str, points: &[ParallelPoint]) {
    if let Some(best) = points
        .iter()
        .filter(|p| p.threads > 1)
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
    {
        println!(
            "[{label}] best parallel point: {} threads -> {:.2}x \
             ({} sequential vs {} parallel per update)",
            best.threads,
            best.speedup(),
            fmt_ns(best.sequential_ns),
            fmt_ns(best.parallel_ns),
        );
    }
}

/// A single-view workload big enough that within-view key-range sharding engages
/// (the shard threshold needs thousands of distinct keys per consolidated flush).
fn sales_revenue_xl(quick: bool) -> MultiViewWorkload {
    let config = if quick {
        WorkloadConfig {
            seed: 43,
            initial_size: 2_000,
            stream_length: 4_000,
            domain_size: 2_000,
            delete_fraction: 0.2,
        }
    } else {
        WorkloadConfig {
            seed: 43,
            initial_size: 40_000,
            stream_length: 60_000,
            domain_size: 50_000,
            delete_fraction: 0.2,
        }
    };
    let single = sales_revenue_int(config);
    MultiViewWorkload {
        name: "sales-revenue-xl",
        catalog: single.catalog,
        views: vec![("revenue", single.query)],
        initial: single.initial,
        stream: single.stream,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let dashboard = sales_dashboard(if quick {
        WorkloadConfig {
            seed: 42,
            initial_size: 400,
            stream_length: 800,
            domain_size: 50,
            delete_fraction: 0.2,
        }
    } else {
        WorkloadConfig {
            seed: 42,
            initial_size: 4_000,
            stream_length: 24_000,
            domain_size: 100,
            delete_fraction: 0.2,
        }
    });
    let dashboard_batch = if quick { 64 } else { 512 };

    let xl = sales_revenue_xl(quick);
    let xl_batch = if quick { 1_024 } else { 8_192 };

    header(&format!(
        "E12 — parallel sharded ingest ({cores} core(s) available; \
         every point asserts per-view table equality and exact ExecStats parity)"
    ));
    if cores < 2 {
        println!(
            "NOTE: single-core machine — thread fan-out and sharding can only add \
             coordination overhead here; speedups <= 1.0x are the honest expectation"
        );
    }

    header(&format!(
        "across views: {} ({} views, |initial| = {}, |stream| = {}, batch {})",
        dashboard.name,
        dashboard.views.len(),
        dashboard.initial.len(),
        dashboard.stream.len(),
        dashboard_batch
    ));
    let k = dashboard.views.len();
    let dash_hash = sweep::<HashViewStorage>("hash", &dashboard, k, dashboard_batch);
    let dash_ordered = sweep::<OrderedViewStorage>("ordered", &dashboard, k, dashboard_batch);
    let mut rows = bench_rows("dashboard", "hash", &dash_hash);
    rows.extend(bench_rows("dashboard", "ordered", &dash_ordered));
    let mut hash_points = dash_hash;
    hash_points.extend(dash_ordered);
    report_best("dashboard", &hash_points);

    header(&format!(
        "within a view: {} (1 view, |initial| = {}, |stream| = {}, batch {})",
        xl.name,
        xl.initial.len(),
        xl.stream.len(),
        xl_batch
    ));
    let xl_hash = sweep::<HashViewStorage>("hash", &xl, 1, xl_batch);
    let xl_ordered = sweep::<OrderedViewStorage>("ordered", &xl, 1, xl_batch);
    rows.extend(bench_rows("revenue-xl", "hash", &xl_hash));
    rows.extend(bench_rows("revenue-xl", "ordered", &xl_ordered));
    let mut xl_points = xl_hash;
    xl_points.extend(xl_ordered);
    report_best("revenue-xl", &xl_points);

    println!(
        "\nparity held at every point above ({} measured); timing is reported as \
         measured — see EXPERIMENTS.md E12 for recorded sweeps and discussion",
        hash_points.len() + xl_points.len()
    );
    match write_bench_json("exp_parallel", &rows) {
        Ok(path) => println!("wrote {path} ({} rows)", rows.len()),
        Err(e) => println!("could not write bench json: {e}"),
    }
}
