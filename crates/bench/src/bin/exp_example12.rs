//! Experiment E2 — regenerates the **Example 1.2 table**: the update trace
//! `+R(c), +R(c), +R(d), +R(c), −R(d), +R(c), −R(c)` for
//! `Q = SELECT count(*) FROM R r1, R r2 WHERE r1.A = r2.A`, with the `Q(R)` column
//! maintained by the compiled trigger program and the `∆Q(R, ±R(·))` columns produced by
//! the symbolic delta transform.
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_example12`

use dbring::{
    compile, delta, eval, parse_expr, parse_query, Catalog, Database, Executor, Tuple, Update,
    UpdateEvent, Value,
};
use dbring_bench::header;

fn main() {
    let mut catalog = Catalog::new();
    catalog.declare("R", &["A"]).unwrap();
    let query = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
    let program = compile(&catalog, &query).unwrap();

    header("compiled trigger program for Example 1.2");
    println!("{}", program.describe());

    // Symbolic first deltas, evaluated per row to fill the ∆Q columns of the table.
    let q_expr = parse_expr("Sum(R(x) * R(y) * (x = y))").unwrap();
    let d_plus = delta(&q_expr, &UpdateEvent::insert("R", &["a"]));
    let d_minus = delta(&q_expr, &UpdateEvent::delete("R", &["a"]));
    let delta_at = |db: &Database, d: &dbring::Expr, v: &str| -> i64 {
        eval(d, db, &Tuple::singleton("a", Value::str(v)))
            .unwrap()
            .get(&Tuple::empty())
            .as_i64()
            .unwrap()
    };

    header("Example 1.2 table (maintained vs. paper)");
    println!(
        "{:<8} | {:>14} | {:>5} | {:>6} {:>6} {:>6} {:>6}",
        "update", "R", "Q(R)", "+R(c)", "-R(c)", "+R(d)", "-R(d)"
    );

    let mut exec = Executor::new(program);
    let mut db = catalog.clone();
    let mut contents: Vec<&str> = Vec::new();
    let print_row = |label: &str,
                     contents: &[&str],
                     exec: &Executor,
                     db: &Database,
                     d_plus: &dbring::Expr,
                     d_minus: &dbring::Expr| {
        println!(
            "{:<8} | {:>14} | {:>5} | {:>6} {:>6} {:>6} {:>6}",
            label,
            format!("{{|{}|}}", contents.join(",")),
            exec.output_value(&[]).as_i64().unwrap_or(0),
            delta_at(db, d_plus, "c"),
            delta_at(db, d_minus, "c"),
            delta_at(db, d_plus, "d"),
            delta_at(db, d_minus, "d"),
        );
    };
    print_row("(start)", &contents, &exec, &db, &d_plus, &d_minus);

    let trace: [(&str, i64, i64); 7] = [
        ("c", 1, 1),
        ("c", 1, 4),
        ("d", 1, 5),
        ("c", 1, 10),
        ("d", -1, 9),
        ("c", 1, 16),
        ("c", -1, 9),
    ];
    for (value, multiplicity, expected_q) in trace {
        let update = Update {
            relation: "R".to_string(),
            values: vec![Value::str(value)],
            multiplicity,
        };
        exec.apply(&update).unwrap();
        db.apply(&update).unwrap();
        if multiplicity > 0 {
            contents.push(value);
        } else if let Some(pos) = contents.iter().position(|v| *v == value) {
            contents.remove(pos);
        }
        let label = format!("{}R({})", if multiplicity > 0 { "+" } else { "-" }, value);
        print_row(&label, &contents, &exec, &db, &d_plus, &d_minus);
        assert_eq!(
            exec.output_value(&[]).as_i64(),
            Some(expected_q),
            "Q(R) after {label} must match the paper"
        );
    }

    header("second delta (constant, as reported below the paper's table)");
    let e1 = UpdateEvent::insert("R", &["a1"]);
    let dd = delta(&delta(&q_expr, &e1), &UpdateEvent::insert("R", &["a2"]));
    for (a1, a2) in [("c", "c"), ("c", "d")] {
        let binding = Tuple::from_pairs(vec![("a1", Value::str(a1)), ("a2", Value::str(a2))]);
        let v = eval(&dd, &db, &binding).unwrap().get(&Tuple::empty());
        println!("  ∆²Q(+R({a1}), +R({a2})) = {v}");
    }
    println!("\nall Q(R) values matched the paper's table");
}
