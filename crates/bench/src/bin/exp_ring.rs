//! Experiment E11 — what a `Ring` buys: total per-update cost of maintaining `k`
//! standing views from one stream, as one `Ring` (shared `DeltaBatch` normalization,
//! routed dispatch, one ingest path) against `k` independent
//! `IncrementalView::apply_batch` loops (each re-normalizing the same updates).
//!
//! Two ring configurations are measured:
//!
//! * **ring** — the default: base-snapshot tracking on, so views can be created
//!   mid-stream and backfilled. The snapshot is the capability the independent views
//!   do not have; its maintenance cost is part of this row.
//! * **ring·untracked** — `without_base_tracking()`: capability parity with the
//!   independent views (neither retains any base state), isolating the pure
//!   amortization win.
//!
//! Every point asserts, per view, that the ring and the independent baseline reach
//! *identical* result tables and *exactly* equal `ExecStats` — routed shared-batch
//! dispatch moves normalization, never ring work (the CI smoke runs `--quick`).
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_ring`
//! (add `-- --quick` for a faster, smaller sweep)

use dbring::{HashViewStorage, OrderedViewStorage};
use dbring_bench::{fmt_ns, header, ring_point, write_bench_json, BenchRow, RingPoint};
use dbring_workloads::{sales_dashboard, MultiViewWorkload, WorkloadConfig};

fn sweep<S: dbring::ViewStorage + Send + 'static>(
    backend: &str,
    workload: &MultiViewWorkload,
    view_counts: &[usize],
    batch_sizes: &[usize],
) -> Vec<RingPoint> {
    let mut points = Vec::new();
    println!(
        "[{backend}] {:>5} | {:>5} | {:>10} | {:>13} | {:>10} | {:>7} | {:>9} | {:>9}",
        "views",
        "batch",
        "ring/upd",
        "untracked/upd",
        "indep/upd",
        "speedup",
        "spd(untr)",
        "ops/upd"
    );
    for &k in view_counts {
        for &batch in batch_sizes {
            let p = ring_point::<S>(workload, k, batch);
            println!(
                "[{backend}] {:>5} | {:>5} | {:>10} | {:>13} | {:>10} | {:>6.2}x | {:>8.2}x | {:>9.1}",
                p.views,
                p.batch_size,
                fmt_ns(p.ring_ns),
                fmt_ns(p.ring_untracked_ns),
                fmt_ns(p.independent_ns),
                p.speedup(),
                p.untracked_speedup(),
                p.ops_per_update,
            );
            points.push(p);
        }
    }
    points
}

/// Runs [`sweep`] under the per-backend acceptance gate: with k >= 4 views, ingesting
/// one stream into a ring must beat k independent `apply_batch` loops at capability
/// parity on THIS backend. Because this is a wall-clock gate (unlike the
/// deterministic table/ExecStats parity asserted inside every `ring_point`), a loaded
/// runner can lose a single sample to scheduler noise — so a failed attempt is
/// re-measured up to two times before the gate trips for real.
fn gated_sweep<S: dbring::ViewStorage + Send + 'static>(
    backend: &str,
    workload: &MultiViewWorkload,
    view_counts: &[usize],
    batch_sizes: &[usize],
) -> Vec<RingPoint> {
    const ATTEMPTS: usize = 3;
    for attempt in 1..=ATTEMPTS {
        let points = sweep::<S>(backend, workload, view_counts, batch_sizes);
        let winning = points
            .iter()
            .filter(|p| p.views >= 4 && p.untracked_speedup() > 1.0)
            .count();
        if winning > 0 {
            return points;
        }
        if attempt < ATTEMPTS {
            println!(
                "[{backend}] no winning k >= 4 point on attempt {attempt}/{ATTEMPTS} \
                 (timing noise?); re-measuring"
            );
        }
    }
    panic!(
        "[{backend}] no k >= 4 configuration where the ring beats independent views \
         in {ATTEMPTS} attempts"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        WorkloadConfig {
            seed: 42,
            initial_size: 400,
            stream_length: 800,
            domain_size: 50,
            delete_fraction: 0.2,
        }
    } else {
        WorkloadConfig {
            seed: 42,
            initial_size: 4_000,
            stream_length: 24_000,
            domain_size: 100,
            delete_fraction: 0.2,
        }
    };
    let workload = sales_dashboard(config);
    let view_counts: &[usize] = if quick { &[4] } else { &[2, 4, 6] };
    let batch_sizes: &[usize] = if quick { &[64] } else { &[16, 64, 512] };

    header(&format!(
        "E11 — ring of k views vs k independent views ({}, |initial| = {}, |stream| = {})",
        workload.name,
        workload.initial.len(),
        workload.stream.len()
    ));
    println!(
        "per-update figures are the TOTAL cost of keeping all k views fresh; every point \
         asserts per-view table equality and exact ExecStats parity across all three paths"
    );

    let mut winning = 0usize;
    let mut eligible = 0usize;
    let mut rows: Vec<BenchRow> = Vec::new();
    for (backend, points) in [
        (
            "hash",
            gated_sweep::<HashViewStorage>("hash", &workload, view_counts, batch_sizes),
        ),
        (
            "ordered",
            gated_sweep::<OrderedViewStorage>("ordered", &workload, view_counts, batch_sizes),
        ),
    ] {
        for p in &points {
            if p.views >= 4 {
                eligible += 1;
                if p.untracked_speedup() > 1.0 {
                    winning += 1;
                }
            }
            for (series, ns) in [
                ("ring", p.ring_ns),
                ("ring-untracked", p.ring_untracked_ns),
                ("independent", p.independent_ns),
            ] {
                rows.push(BenchRow {
                    series: format!("{backend}/k{}/{series}", p.views),
                    batch_size: p.batch_size,
                    ns_per_update: ns,
                    ops_per_update: p.ops_per_update,
                });
            }
        }
        let best = points
            .iter()
            .filter(|p| p.views >= 4)
            .max_by(|a, b| a.untracked_speedup().total_cmp(&b.untracked_speedup()));
        if let Some(p) = best {
            println!(
                "[{backend}] best k >= 4 amortization: {} views, batch {} -> {:.2}x \
                 (untracked; {:.2}x with snapshot tracking)",
                p.views,
                p.batch_size,
                p.untracked_speedup(),
                p.speedup()
            );
        }
    }
    println!(
        "\nring (untracked) beats k >= 4 independent view loops in {winning} of {eligible} \
         measured k >= 4 points"
    );
    match write_bench_json("exp_ring", &rows) {
        Ok(path) => println!("wrote {path} ({} rows)", rows.len()),
        Err(e) => println!("could not write bench json: {e}"),
    }
}
