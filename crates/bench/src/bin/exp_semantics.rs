//! Experiment E4 — the worked semantics examples of Sections 3 and 4: GMR arithmetic
//! (Example 3.2), selection via a condition pgmr (Example 3.5 / 4.2), value aggregation
//! (Example 4.3), and constructing GMRs from scratch with assignments (Example 4.4).
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_semantics`

use dbring::{eval, parse_expr, Database, Tuple, Value};
use dbring_bench::header;
use dbring_relations::gmr::{Gmr, GmrExt};
use dbring_relations::tuple;

fn main() {
    header("Example 3.2: the ring of generalized multiset relations");
    let r: Gmr<i64> = Gmr::from_pairs(vec![
        (tuple! { "A" => "a1" }, 1),
        (tuple! { "A" => "a2", "B" => "b" }, 2),
    ]);
    let s: Gmr<i64> = Gmr::from_pairs(vec![(tuple! { "C" => "c" }, 3)]);
    let t: Gmr<i64> = Gmr::from_pairs(vec![
        (tuple! { "C" => "c" }, 4),
        (tuple! { "B" => "b", "C" => "c" }, 5),
    ]);
    println!("R =\n{}", r.display_table());
    println!("S + T =\n{}", s.add(&t).display_table());
    println!("R * (S + T) =\n{}", r.mul(&s.add(&t)).display_table());

    let mut db = Database::new();
    db.declare("R", &["a", "b"]).unwrap();
    for _ in 0..2 {
        db.insert("R", vec![Value::int(10), Value::int(20)])
            .unwrap();
    }
    for _ in 0..3 {
        db.insert("R", vec![Value::int(30), Value::int(40)])
            .unwrap();
    }

    header("Example 4.1: atoms rename columns and select on bound variables");
    let atom = parse_expr("R(x, y)").unwrap();
    let selected = eval(&atom, &db, &tuple! { "y" => 20 }).unwrap();
    println!("[[R(x, y)]]({{y -> 20}}) =\n{}", selected.display_table());

    header("Example 4.2: conditions as multiplicative factors");
    let filtered = eval(
        &parse_expr("R(x, y) * (x < y)").unwrap(),
        &db,
        &Tuple::empty(),
    )
    .unwrap();
    println!("[[R(x, y) * (x < y)]] =\n{}", filtered.display_table());

    header("Example 4.3: Sum with a value term");
    let total = eval(
        &parse_expr("Sum(R(x, y) * 3 * x)").unwrap(),
        &db,
        &Tuple::empty(),
    )
    .unwrap()
    .get(&Tuple::empty());
    println!("[[Sum(R(x, y) * 3 * x)]](<>) = {total}   (2*3*10 + 3*3*30 = 330)");

    header("Example 4.4: constructing a GMR from scratch");
    let constructed = eval(
        &parse_expr("(x := x1) * (y := y1) * z + (x := x2) * -3").unwrap(),
        &db,
        &tuple! { "x1" => "a1", "y1" => "b1", "x2" => "a2", "z" => 2 },
    )
    .unwrap();
    println!("{}", constructed.display_table());
    println!("\nall semantics examples evaluated; compare against Sections 3-4 of the paper");
}
