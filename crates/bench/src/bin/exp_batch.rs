//! Experiment E10 — what batching buys: per-update latency of per-tuple `apply_all`
//! against `apply_batch` (DeltaBatch normalization included), swept over batch sizes on
//! both storage backends, reporting the crossover batch size where the batch path wins.
//!
//! Two trigger shapes bound the picture:
//!
//! * **weighted** (degree ≤ 1 in the updated relation, e.g. per-customer revenue): the
//!   batch path consolidates multiplicities and fires once per distinct tuple with
//!   scaled writes, then lands each map's deltas in one sorted pass — it saves real
//!   ring *work*, not just dispatch constants;
//! * **unit-replay** (self-joins, which read the maps they write): the batch path must
//!   replay unit updates, so it can only save dispatch/frame setup — on a
//!   duplicate-free insert-only stream it performs *identical* ring work, which this
//!   experiment asserts (the CI smoke runs `--quick`).
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_batch`
//! (add `-- --quick` for a faster, smaller sweep)

use dbring::{compile, DeltaBatch, Executor, HashViewStorage, OrderedViewStorage};
use dbring_bench::{batch_point, fmt_ns, header, write_bench_json, BenchRow};
use dbring_workloads::{
    customers_by_nation, sales_revenue_int, self_join_count, Workload, WorkloadConfig,
};

fn sweep(name: &str, case: &str, workload: &Workload, sizes: &[usize], rows: &mut Vec<BenchRow>) {
    header(name);
    for (backend, points) in [
        (
            "hash",
            sizes
                .iter()
                .map(|&k| batch_point::<HashViewStorage>(workload, k))
                .collect::<Vec<_>>(),
        ),
        (
            "ordered",
            sizes
                .iter()
                .map(|&k| batch_point::<OrderedViewStorage>(workload, k))
                .collect::<Vec<_>>(),
        ),
    ] {
        println!(
            "[{backend}] {:>6} | {:>12} | {:>12} | {:>8} | {:>11} | {:>9}",
            "batch", "per-tuple/upd", "batch/upd", "speedup", "pt ops/upd", "b ops/upd"
        );
        for p in &points {
            println!(
                "[{backend}] {:>6} | {:>12} | {:>12} | {:>7.2}x | {:>11.1} | {:>9.1}",
                p.batch_size,
                fmt_ns(p.per_tuple_ns),
                fmt_ns(p.batch_ns),
                p.speedup(),
                p.per_tuple_ops,
                p.batch_ops,
            );
        }
        match points.iter().find(|p| p.speedup() > 1.0) {
            Some(p) => println!(
                "[{backend}] crossover: batch size {} (batch path wins from here, {:.2}x)",
                p.batch_size,
                p.speedup()
            ),
            None => println!("[{backend}] no crossover in the swept sizes"),
        }
        for p in &points {
            rows.push(BenchRow {
                series: format!("{case}/{backend}/per_tuple"),
                batch_size: p.batch_size,
                ns_per_update: p.per_tuple_ns,
                ops_per_update: p.per_tuple_ops,
            });
            rows.push(BenchRow {
                series: format!("{case}/{backend}/batch"),
                batch_size: p.batch_size,
                ns_per_update: p.batch_ns,
                ops_per_update: p.batch_ops,
            });
        }
    }
}

/// Asserts the batch path's work-parity contract on a unit-replay trigger: over a
/// duplicate-free insert-only stream, chunked `apply_batch` performs *exactly* the ring
/// work of per-tuple `apply_all` (consolidation finds nothing to collapse and weighted
/// firing does not apply, so only dispatch constants differ).
fn assert_unit_replay_work_parity() {
    let mut catalog = dbring::Catalog::new();
    catalog.declare("R", &["A"]).unwrap();
    let q = dbring::parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
    let program = compile(&catalog, &q).unwrap();
    assert!(
        !Executor::new(program.clone()).plan().triggers[0].weighted_firing,
        "self-join triggers must be unit-replay"
    );
    let updates: Vec<dbring::Update> = (0..512)
        .map(|i| dbring::Update::insert("R", vec![dbring::Value::int(i)]))
        .collect();
    let mut per_tuple = Executor::new(program.clone());
    per_tuple.apply_all(&updates).unwrap();
    let mut batched = Executor::new(program);
    for chunk in updates.chunks(64) {
        batched
            .apply_batch(&DeltaBatch::from_updates(chunk))
            .unwrap();
    }
    assert_eq!(
        per_tuple.stats(),
        batched.stats(),
        "unit-replay batches must perform identical ring work"
    );
    assert_eq!(per_tuple.output_table(), batched.output_table());
    println!(
        "work parity: unit-replay batch path performed exactly {} ring ops, \
         like the per-tuple path",
        per_tuple.stats().arithmetic_ops()
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[1, 16, 256, 1024]
    } else {
        &[1, 4, 16, 64, 256, 1024, 4096]
    };
    let (initial, stream) = if quick { (500, 4_096) } else { (2_000, 16_384) };
    let mut rows: Vec<BenchRow> = Vec::new();

    sweep(
        "per-customer revenue (degree-1, weighted firing, hot keys)",
        "revenue_hot",
        &sales_revenue_int(WorkloadConfig {
            seed: 101,
            initial_size: initial,
            stream_length: stream,
            // A hot-key stream (point-of-sale style): repeats are what consolidation
            // and weighted firing collapse into fewer firings.
            domain_size: 8,
            delete_fraction: 0.2,
        }),
        sizes,
        &mut rows,
    );
    sweep(
        "customers by nation (Example 5.2, unit replay)",
        "customers_nation",
        &customers_by_nation(WorkloadConfig {
            seed: 102,
            initial_size: initial,
            stream_length: stream.min(4_096),
            domain_size: 12,
            delete_fraction: 0.2,
        }),
        sizes,
        &mut rows,
    );
    sweep(
        "self-join count (Example 1.2, unit replay, probe-only)",
        "self_join",
        &self_join_count(WorkloadConfig {
            seed: 103,
            initial_size: initial,
            stream_length: stream,
            domain_size: 100,
            delete_fraction: 0.2,
        }),
        sizes,
        &mut rows,
    );

    header("batch-vs-per-tuple work parity (unit replay)");
    assert_unit_replay_work_parity();

    let path = write_bench_json("exp_batch", &rows).expect("write BENCH_exp_batch.json");
    println!("wrote {path} ({} rows)", rows.len());
}
