//! Experiment E16 — serving reads under sustained ingest: N reader threads acquiring
//! lock-free snapshots of the sales dashboard while one writer thread keeps
//! ingesting, the split [`Ring::reader`] / [`dbring::RingHandle`] is built for.
//!
//! One writer owns the `Ring` and applies the update stream in batches; snapshots
//! are published at each batch commit (the quiescent points). Reader threads hold a
//! [`dbring::RingHandle`] and loop acquire-snapshot → point-lookup, so every sample pays the
//! full serving path: epoch acquire + binary-search probe. Measured per point:
//!
//! * reader throughput (reads/s across all readers) and mean/p50/p95/p99 read latency,
//! * writer throughput (ns per ingested update) with publication enabled,
//! * snapshot publication cost (ns per update, and share of writer wall-clock),
//! * bare snapshot-acquire latency (no lookup), demonstrating O(1) acquire.
//!
//! Two consistency checks run alongside the measurement: a snapshot acquired before
//! the writer starts must be bit-identical after the writer finishes (immutability),
//! and every reader must observe monotonically non-decreasing `ingested()` counts
//! (publication never goes backwards).
//!
//! Run with: `cargo run --release -p dbring-bench --bin exp_serve`
//! (add `-- --quick` for the CI smoke: hash backend only, fewer readers)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dbring::{Ring, RingBuilder, StorageBackend, Value, ViewDef};
use dbring_bench::{fmt_ns, header, write_bench_json, BenchRow};
use dbring_workloads::{sales_dashboard, MultiViewWorkload, WorkloadConfig};

const BATCH: usize = 256;
const READ_VIEW: &str = "revenue_by_cust";

struct ServePoint {
    backend: StorageBackend,
    readers: usize,
    reads_per_sec: f64,
    read_mean_ns: f64,
    read_p50_ns: f64,
    read_p95_ns: f64,
    read_p99_ns: f64,
    acquire_mean_ns: f64,
    write_ns_per_update: f64,
    publish_ns_per_update: f64,
    publish_share: f64,
}

fn build_ring(backend: StorageBackend, workload: &MultiViewWorkload) -> Ring {
    let mut ring = RingBuilder::new(workload.catalog.clone())
        .backend(backend)
        .build();
    for (name, query) in &workload.views {
        ring.create_view(*name, ViewDef::Query(query.clone()))
            .expect("create view");
    }
    ring.apply_batch(&workload.initial).expect("initial load");
    ring
}

fn quantile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64
}

fn serve_point(
    backend: StorageBackend,
    workload: &MultiViewWorkload,
    readers: usize,
    domain: usize,
    run_ms: u64,
) -> ServePoint {
    let mut ring = build_ring(backend, workload);
    // Acquire the handle (and so enable serving) BEFORE the writer starts: from here
    // on every batch commit publishes fresh snapshots.
    let handle = ring.reader();

    // Immutability witness: this snapshot must not change while the writer runs.
    let held = handle.snapshot_named(READ_VIEW).expect("snapshot");
    let held_before = held.table();

    let stop = Arc::new(AtomicBool::new(false));

    // One writer thread owns the ring and cycles the stream in batches until told
    // to stop. ℤ-multiplicities make re-applying the stream a valid continuation.
    let writer = {
        let stop = Arc::clone(&stop);
        let stream = workload.stream.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            let mut updates = 0u64;
            'outer: loop {
                for chunk in stream.chunks(BATCH) {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    ring.apply_batch(chunk).expect("ingest");
                    updates += chunk.len() as u64;
                }
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            (updates, elapsed, ring.snapshot_publish_ns())
        })
    };

    // Reader threads: acquire + point-lookup per iteration, sampling latency.
    let reader_threads: Vec<_> = (0..readers)
        .map(|r| {
            let stop = Arc::clone(&stop);
            let handle = handle.clone();
            std::thread::spawn(move || {
                let keys: Vec<Vec<Value>> =
                    (0..domain).map(|k| vec![Value::int(k as i64)]).collect();
                let mut samples: Vec<u64> = Vec::with_capacity(1 << 16);
                let mut last_ingested = 0u64;
                let mut i = r; // stagger starting keys across readers
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let snapshot = handle.snapshot_named(READ_VIEW).expect("snapshot");
                    let value = snapshot.value(&keys[i % keys.len()]);
                    let dt = t0.elapsed().as_nanos() as u64;
                    // Publication must never go backwards for a single reader.
                    assert!(snapshot.ingested() >= last_ingested, "ingested regressed");
                    last_ingested = snapshot.ingested();
                    // Keep the lookup observable so it cannot be optimized away.
                    std::hint::black_box(value);
                    samples.push(dt);
                    i += 1;
                }
                samples
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(run_ms));
    stop.store(true, Ordering::Relaxed);

    let mut samples: Vec<u64> = Vec::new();
    for t in reader_threads {
        samples.extend(t.join().expect("reader thread"));
    }
    let (updates, write_elapsed_ns, publish_ns) = writer.join().expect("writer thread");

    // The held snapshot is immutable: the writer's batches never touched it.
    assert_eq!(
        held.table(),
        held_before,
        "held snapshot mutated under ingest"
    );

    // Bare acquire cost, measured after the run on the final published state.
    let acquire_rounds = 10_000u32;
    let t0 = Instant::now();
    for _ in 0..acquire_rounds {
        std::hint::black_box(handle.snapshot_named(READ_VIEW).expect("snapshot"));
    }
    let acquire_mean_ns = t0.elapsed().as_nanos() as f64 / f64::from(acquire_rounds);

    let total_reads = samples.len() as u64;
    let mean = samples.iter().sum::<u64>() as f64 / total_reads.max(1) as f64;
    samples.sort_unstable();
    ServePoint {
        backend,
        readers,
        reads_per_sec: total_reads as f64 / (run_ms as f64 / 1e3),
        read_mean_ns: mean,
        read_p50_ns: quantile(&samples, 0.50),
        read_p95_ns: quantile(&samples, 0.95),
        read_p99_ns: quantile(&samples, 0.99),
        acquire_mean_ns,
        write_ns_per_update: write_elapsed_ns as f64 / updates.max(1) as f64,
        publish_ns_per_update: publish_ns as f64 / updates.max(1) as f64,
        publish_share: publish_ns as f64 / write_elapsed_ns.max(1) as f64,
    }
}

fn rows_for(p: &ServePoint) -> Vec<BenchRow> {
    let prefix = format!("serve/{}/readers{}", p.backend.name(), p.readers);
    let row = |metric: &str, ns: f64, ops: f64| BenchRow {
        series: format!("{prefix}/{metric}"),
        batch_size: BATCH,
        ns_per_update: ns,
        ops_per_update: ops,
    };
    vec![
        row("read_mean_ns", p.read_mean_ns, p.reads_per_sec),
        row("read_p50_ns", p.read_p50_ns, 0.0),
        row("read_p95_ns", p.read_p95_ns, 0.0),
        row("read_p99_ns", p.read_p99_ns, 0.0),
        row("acquire_mean_ns", p.acquire_mean_ns, 0.0),
        row("write_ns_per_update", p.write_ns_per_update, 0.0),
        row(
            "publish_ns_per_update",
            p.publish_ns_per_update,
            p.publish_share,
        ),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        WorkloadConfig {
            seed: 42,
            initial_size: 400,
            stream_length: 1_600,
            domain_size: 50,
            delete_fraction: 0.2,
        }
    } else {
        WorkloadConfig {
            seed: 42,
            initial_size: 4_000,
            stream_length: 24_000,
            domain_size: 100,
            delete_fraction: 0.2,
        }
    };
    let domain = config.domain_size;
    let run_ms: u64 = if quick { 200 } else { 1_500 };
    let reader_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let backends: &[StorageBackend] = if quick {
        &[StorageBackend::Hash]
    } else {
        &[StorageBackend::Hash, StorageBackend::Ordered]
    };
    let workload = sales_dashboard(config);

    header(&format!(
        "E16 — serving reads under sustained ingest on {} ({} views, |initial| = {}, \
         |stream| = {} cycled; 1 writer at batch {}, {} ms per point; reads hit {})",
        workload.name,
        workload.views.len(),
        workload.initial.len(),
        workload.stream.len(),
        BATCH,
        run_ms,
        READ_VIEW,
    ));
    println!(
        "each read = snapshot acquire + point lookup; held-snapshot immutability and \
         per-reader ingest monotonicity asserted at every point"
    );

    let mut rows = Vec::new();
    for &backend in backends {
        println!(
            "\n[{}] {:>7} | {:>11} | {:>9} | {:>9} | {:>9} | {:>9} | {:>10} | {:>9} | {:>7}",
            backend.name(),
            "readers",
            "reads/s",
            "mean",
            "p50",
            "p95",
            "p99",
            "acquire",
            "write/upd",
            "publish"
        );
        for &readers in reader_counts {
            let p = serve_point(backend, &workload, readers, domain, run_ms);
            println!(
                "[{}] {:>7} | {:>11.0} | {:>9} | {:>9} | {:>9} | {:>9} | {:>10} | {:>9} | {:>6.1}%",
                backend.name(),
                p.readers,
                p.reads_per_sec,
                fmt_ns(p.read_mean_ns),
                fmt_ns(p.read_p50_ns),
                fmt_ns(p.read_p95_ns),
                fmt_ns(p.read_p99_ns),
                fmt_ns(p.acquire_mean_ns),
                fmt_ns(p.write_ns_per_update),
                p.publish_share * 100.0,
            );
            rows.extend(rows_for(&p));
        }
    }

    match write_bench_json("exp_serve", &rows) {
        Ok(path) => println!("\nwrote {} rows to {path}", rows.len()),
        Err(error) => println!("\nfailed to write bench json: {error}"),
    }
}
