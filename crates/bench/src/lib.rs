//! Shared machinery for the `dbring` experiment binaries (`exp_*`) and Criterion benches.
//!
//! The experiment index lives in `DESIGN.md`; every binary regenerates one table or figure
//! of the paper and prints it in a form directly comparable to `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use dbring::{
    compile, ClassicalIvm, Executor, HashViewStorage, IncrementalView, InterpretedExecutor,
    MaintenanceStrategy, NaiveReeval, OrderedViewStorage, StorageFootprint,
};
use dbring_workloads::Workload;
use serde::Serialize;

/// One row of the complexity-separation sweep: per-update cost of each strategy at a given
/// initial database size.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SweepPoint {
    /// Initial database size (number of bulk-loaded updates).
    pub initial_size: usize,
    /// Mean per-update latency of recursive IVM, in nanoseconds.
    pub recursive_ns: f64,
    /// Mean arithmetic operations per update performed by recursive IVM.
    pub recursive_ops: f64,
    /// Mean per-update latency of classical first-order IVM, in nanoseconds.
    pub classical_ns: f64,
    /// Mean per-update latency of naive re-evaluation, in nanoseconds.
    pub naive_ns: f64,
    /// Number of stream updates actually measured for the naive strategy (it is capped so
    /// the sweep terminates in reasonable time).
    pub naive_measured: usize,
}

/// Measures the mean per-update latency of a strategy over (a prefix of) a stream.
pub fn measure_per_update(
    strategy: &mut dyn MaintenanceStrategy,
    stream: &[dbring::Update],
    limit: usize,
) -> (Duration, usize) {
    let n = stream.len().min(limit).max(1);
    let started = Instant::now();
    for update in &stream[..n] {
        strategy
            .apply_update(update)
            .expect("strategy applies update");
    }
    (started.elapsed() / n as u32, n)
}

/// Runs the three strategies on one workload and reports their per-update cost.
///
/// `classical_limit` and `naive_limit` cap how many stream updates the two baselines
/// replay (their growing per-update cost is what makes them slow; a cap keeps sweeps
/// tractable without changing the trend). A limit of 0 skips the naive strategy.
pub fn sweep_point(workload: &Workload, classical_limit: usize, naive_limit: usize) -> SweepPoint {
    let initial_db = workload.initial_database();

    // Recursive IVM (compiled): bulk-load the initial database by streaming it through the
    // triggers (cheap and memory-bounded even for large starting databases), then measure
    // the stream.
    let mut recursive =
        IncrementalView::new(&workload.catalog, workload.query.clone()).expect("workload compiles");
    recursive
        .apply_all(&workload.initial)
        .expect("bulk load succeeds");
    let initial_result = recursive.table();
    recursive.executor_mut().reset_stats();
    let started = Instant::now();
    recursive
        .apply_all(&workload.stream)
        .expect("recursive IVM applies stream");
    let recursive_ns = started.elapsed().as_nanos() as f64 / workload.stream.len().max(1) as f64;
    let recursive_ops =
        recursive.stats().arithmetic_ops() as f64 / workload.stream.len().max(1) as f64;

    // Classical first-order IVM, seeded with the (identical) starting result so that the
    // sweep does not pay a from-scratch evaluation of the bulk-loaded database.
    let mut classical = ClassicalIvm::with_initial_result(
        initial_db.clone(),
        workload.query.clone(),
        initial_result,
    )
    .expect("classical baseline initializes");
    let (classical_per_update, _) =
        measure_per_update(&mut classical, &workload.stream, classical_limit.max(1));

    // Naive re-evaluation (capped; a limit of 0 skips it entirely — on large databases the
    // naive strategy materializes the full join result per update, which is exactly the
    // blow-up the experiment is about).
    let (naive_per_update, naive_measured) = if naive_limit == 0 {
        (Duration::ZERO, 0)
    } else {
        let mut naive = NaiveReeval::new(initial_db, workload.query.clone())
            .expect("naive baseline initializes");
        measure_per_update(&mut naive, &workload.stream, naive_limit)
    };

    SweepPoint {
        initial_size: workload.initial.len(),
        recursive_ns,
        recursive_ops,
        classical_ns: classical_per_update.as_nanos() as f64,
        naive_ns: if naive_measured == 0 {
            f64::NAN
        } else {
            naive_per_update.as_nanos() as f64
        },
        naive_measured,
    }
}

/// Renders a finite float as a JSON number, non-finite as `null` (as serde_json does).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Renders a string as a JSON string literal with the required escapes.
fn json_str(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One machine-readable benchmark row: a named series measured at one batch size.
/// The experiment binaries collect these and write them with [`write_bench_json`], so
/// the perf trajectory is tracked across PRs as data instead of EXPERIMENTS.md prose.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Which measurement this row belongs to (e.g. `"revenue/hash/interned"`).
    pub series: String,
    /// Number of stream updates per batch (1 for per-tuple baselines).
    pub batch_size: usize,
    /// Mean wall-clock nanoseconds per stream update.
    pub ns_per_update: f64,
    /// Mean arithmetic ring operations per stream update.
    pub ops_per_update: f64,
}

/// Renders bench rows as a pretty-printed JSON array of objects.
pub fn bench_rows_json(rows: &[BenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\n    \"series\": {},\n    \"batch_size\": {},\n    \
             \"ns_per_update\": {},\n    \"ops_per_update\": {}\n  }}{}\n",
            json_str(&r.series),
            r.batch_size,
            json_f64(r.ns_per_update),
            json_f64(r.ops_per_update),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out
}

/// Writes bench rows to `BENCH_<exp>.json` in the current directory and returns the
/// path. The experiment binaries call this once at the end of a run.
pub fn write_bench_json(exp: &str, rows: &[BenchRow]) -> std::io::Result<String> {
    let path = format!("BENCH_{exp}.json");
    std::fs::write(&path, bench_rows_json(rows) + "\n")?;
    Ok(path)
}

/// Renders sweep results as pretty-printed JSON, in the shape serde_json would produce
/// for `Vec<(String, Vec<SweepPoint>)>`: an array of `[name, [point objects]]` pairs.
/// Hand-rolled because the offline `serde` stand-in (see `compat/README.md`) cannot
/// serialize; non-finite floats become `null`, as serde_json renders them.
pub fn sweep_results_json<S: AsRef<str>>(results: &[(S, Vec<SweepPoint>)]) -> String {
    let mut out = String::from("[\n");
    for (i, (name, points)) in results.iter().enumerate() {
        out.push_str("  [\n    ");
        out.push_str(&json_str(name.as_ref()));
        out.push_str(",\n    [\n");
        for (j, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\n        \"initial_size\": {},\n        \"recursive_ns\": {},\n        \
                 \"recursive_ops\": {},\n        \"classical_ns\": {},\n        \
                 \"naive_ns\": {},\n        \"naive_measured\": {}\n      }}{}\n",
                p.initial_size,
                json_f64(p.recursive_ns),
                json_f64(p.recursive_ops),
                json_f64(p.classical_ns),
                json_f64(p.naive_ns),
                p.naive_measured,
                if j + 1 < points.len() { "," } else { "" },
            ));
        }
        out.push_str("    ]\n  ]");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// One row of the lowering sweep: per-update cost of the slot-resolved executor against
/// the reference interpreter at a given initial database size (same compiled program,
/// same storage layout, same update stream — the difference is purely the inner loop).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LoweringPoint {
    /// Initial database size (number of bulk-loaded updates).
    pub initial_size: usize,
    /// Mean per-update latency of the lowered (plan-driven) executor, in nanoseconds.
    pub lowered_ns: f64,
    /// Mean per-update latency of the string-named interpreter, in nanoseconds.
    pub interpreted_ns: f64,
    /// Mean arithmetic operations per update (identical on both paths by construction —
    /// asserted here, tested exhaustively in `dbring-runtime`).
    pub ops_per_update: f64,
}

impl LoweringPoint {
    /// Interpreter time over lowered time (> 1 means lowering wins).
    pub fn speedup(&self) -> f64 {
        if self.lowered_ns > 0.0 {
            self.interpreted_ns / self.lowered_ns
        } else {
            f64::NAN
        }
    }
}

/// Runs one workload through the lowered executor and the reference interpreter and
/// reports their per-update cost (the shared setup of `exp_lowering` and the
/// `per_update_latency` bench).
pub fn lowering_point(workload: &Workload) -> LoweringPoint {
    let program = compile(&workload.catalog, &workload.query).expect("workload compiles");
    let streamed = workload.stream.len().max(1) as f64;

    let mut lowered = Executor::new(program.clone());
    lowered
        .apply_all(&workload.initial)
        .expect("bulk load succeeds");
    lowered.reset_stats();
    let started = Instant::now();
    lowered
        .apply_all(&workload.stream)
        .expect("lowered executor applies stream");
    let lowered_ns = started.elapsed().as_nanos() as f64 / streamed;
    let lowered_stats = lowered.stats();

    let mut interpreted = InterpretedExecutor::new(program);
    interpreted
        .apply_all(&workload.initial)
        .expect("bulk load succeeds");
    interpreted.reset_stats();
    let started = Instant::now();
    interpreted
        .apply_all(&workload.stream)
        .expect("interpreter applies stream");
    let interpreted_ns = started.elapsed().as_nanos() as f64 / streamed;

    assert_eq!(
        lowered_stats,
        interpreted.stats(),
        "lowered and interpreted paths must perform identical ring work"
    );
    assert_eq!(lowered.output_table(), interpreted.output_table());

    LoweringPoint {
        initial_size: workload.initial.len(),
        lowered_ns,
        interpreted_ns,
        ops_per_update: lowered_stats.arithmetic_ops() as f64 / streamed,
    }
}

/// One row of the storage-backend sweep: per-update cost and memory proxy of the lowered
/// executor on the hash backend vs the ordered backend (same compiled program, same
/// update stream — the difference is purely the [`dbring::ViewStorage`] backend under
/// the plan's probe/enumerate/write ops).
#[derive(Clone, Copy, Debug)]
pub struct StoragePoint {
    /// Initial database size (number of bulk-loaded updates).
    pub initial_size: usize,
    /// Mean per-update latency on the hash backend, in nanoseconds.
    pub hash_ns: f64,
    /// Mean per-update latency on the ordered backend, in nanoseconds.
    pub ordered_ns: f64,
    /// Mean arithmetic operations per update (identical on both backends by
    /// construction — asserted here, property-tested in `dbring-runtime`).
    pub ops_per_update: f64,
    /// Entry/index-entry counts of the hash-backed view hierarchy after the stream.
    pub hash_footprint: StorageFootprint,
    /// Entry/index-entry counts of the ordered-backed view hierarchy after the stream.
    pub ordered_footprint: StorageFootprint,
}

impl StoragePoint {
    /// Ordered time over hash time (> 1 means the hash backend is faster).
    pub fn ordered_over_hash(&self) -> f64 {
        if self.hash_ns > 0.0 {
            self.ordered_ns / self.hash_ns
        } else {
            f64::NAN
        }
    }
}

/// Runs one workload through the lowered executor on both storage backends and reports
/// per-update cost plus the memory proxy (the shared setup of `exp_storage` and the
/// `storage_backends` bench). Asserts that the two backends perform identical ring work
/// and reach identical output tables.
pub fn storage_point(workload: &Workload) -> StoragePoint {
    let program = compile(&workload.catalog, &workload.query).expect("workload compiles");
    let streamed = workload.stream.len().max(1) as f64;

    let mut hash = Executor::<HashViewStorage>::with_backend(program.clone());
    hash.apply_all(&workload.initial)
        .expect("bulk load succeeds");
    hash.reset_stats();
    let started = Instant::now();
    hash.apply_all(&workload.stream)
        .expect("hash backend applies stream");
    let hash_ns = started.elapsed().as_nanos() as f64 / streamed;
    let hash_stats = hash.stats();

    let mut ordered = Executor::<OrderedViewStorage>::with_backend(program);
    ordered
        .apply_all(&workload.initial)
        .expect("bulk load succeeds");
    ordered.reset_stats();
    let started = Instant::now();
    ordered
        .apply_all(&workload.stream)
        .expect("ordered backend applies stream");
    let ordered_ns = started.elapsed().as_nanos() as f64 / streamed;

    assert_eq!(
        hash_stats,
        ordered.stats(),
        "storage backends must perform identical ring work"
    );
    assert_eq!(hash.output_table(), ordered.output_table());

    StoragePoint {
        initial_size: workload.initial.len(),
        hash_ns,
        ordered_ns,
        ops_per_update: hash_stats.arithmetic_ops() as f64 / streamed,
        hash_footprint: hash.storage_footprint(),
        ordered_footprint: ordered.storage_footprint(),
    }
}

/// One row of the batch-crossover sweep: per-update cost of the per-tuple path against
/// the batch path at one batch size, on one storage backend (same compiled program,
/// same update stream — the difference is purely `apply_all` vs `apply_batch`, with
/// the batch figure *including* `DeltaBatch` normalization).
#[derive(Clone, Copy, Debug)]
pub struct BatchPoint {
    /// Number of stream updates per batch.
    pub batch_size: usize,
    /// Mean per-update latency of per-tuple `apply_all`, in nanoseconds.
    pub per_tuple_ns: f64,
    /// Mean per-update latency of chunked `apply_batch` (consolidation included), in
    /// nanoseconds.
    pub batch_ns: f64,
    /// Mean arithmetic operations per update on the per-tuple path.
    pub per_tuple_ops: f64,
    /// Mean arithmetic operations per update on the batch path (lower on weighted,
    /// degree-1 triggers — consolidation and weighted firing are where batching wins
    /// work, not just constants).
    pub batch_ops: f64,
}

impl BatchPoint {
    /// Per-tuple time over batch time (> 1 means the batch path wins).
    pub fn speedup(&self) -> f64 {
        if self.batch_ns > 0.0 {
            self.per_tuple_ns / self.batch_ns
        } else {
            f64::NAN
        }
    }
}

/// Runs one workload's stream through per-tuple `apply_all` and through `apply_batch`
/// in chunks of `batch_size`, on the storage backend named by the type parameter (the
/// shared setup of `exp_batch` and the `batch_crossover` bench). Asserts that both
/// paths reach identical output tables and view hierarchies — so pass an
/// integer-valued workload (e.g. `sales_revenue_int`, not `sales_revenue`): float
/// aggregates may legitimately differ by rounding, since the batch path reorders the
/// accumulation.
pub fn batch_point<S: dbring::ViewStorage>(workload: &Workload, batch_size: usize) -> BatchPoint {
    use dbring::BatchNormalizer;
    let program = compile(&workload.catalog, &workload.query).expect("workload compiles");
    let streamed = workload.stream.len().max(1) as f64;

    let mut per_tuple = Executor::<S>::with_backend(program.clone());
    per_tuple
        .apply_all(&workload.initial)
        .expect("bulk load succeeds");
    per_tuple.reset_stats();
    let started = Instant::now();
    per_tuple
        .apply_all(&workload.stream)
        .expect("per-tuple path applies stream");
    let per_tuple_ns = started.elapsed().as_nanos() as f64 / streamed;

    let mut batched = Executor::<S>::with_backend(program);
    batched
        .apply_all(&workload.initial)
        .expect("bulk load succeeds");
    batched.reset_stats();
    // The production batch path: interned fixed-width normalization with scratch
    // reused across batches (what `Ring::apply_batch` runs).
    let mut normalizer = BatchNormalizer::new();
    let started = Instant::now();
    for chunk in workload.stream.chunks(batch_size.max(1)) {
        // Normalization is part of the measured batch cost: it is work the per-tuple
        // path does not do.
        let batch = normalizer.normalize(chunk);
        batched
            .apply_batch(&batch)
            .expect("batch path applies stream");
    }
    let batch_ns = started.elapsed().as_nanos() as f64 / streamed;

    assert_eq!(
        per_tuple.output_table(),
        batched.output_table(),
        "batch path must reach the per-tuple table"
    );
    assert_eq!(per_tuple.total_entries(), batched.total_entries());

    BatchPoint {
        batch_size,
        per_tuple_ns,
        batch_ns,
        per_tuple_ops: per_tuple.stats().arithmetic_ops() as f64 / streamed,
        batch_ops: batched.stats().arithmetic_ops() as f64 / streamed,
    }
}

/// One row of the interning experiment: per-update cost of three ingest paths over the
/// same stream — per-tuple `apply_all`, chunked `apply_batch` fed by the *classic*
/// `DeltaBatch::from_updates` comparison sort, and chunked `apply_batch` fed by the
/// *interned* fixed-width [`BatchNormalizer`](dbring::BatchNormalizer) — on one storage backend. Both batch
/// figures include their normalization cost; parity (equal tables, bit-identical
/// `ExecStats` between the two batch paths) is asserted on every run.
#[derive(Clone, Copy, Debug)]
pub struct InternPoint {
    /// Number of stream updates per batch.
    pub batch_size: usize,
    /// Mean per-update latency of per-tuple `apply_all`, in nanoseconds.
    pub per_tuple_ns: f64,
    /// Mean per-update latency of the classic `Vec<Value>` batch path, in nanoseconds.
    pub classic_ns: f64,
    /// Mean per-update latency of the interned fixed-width batch path, in nanoseconds.
    pub interned_ns: f64,
    /// Mean arithmetic operations per update on the per-tuple path.
    pub per_tuple_ops: f64,
    /// Mean arithmetic operations per update on the batch paths (identical for both —
    /// asserted; interning changes representation, never ring work).
    pub batch_ops: f64,
}

impl InternPoint {
    /// Per-tuple time over interned-batch time (> 1: interning beats the per-tuple
    /// floor — the E14 gate).
    pub fn speedup_vs_per_tuple(&self) -> f64 {
        if self.interned_ns > 0.0 {
            self.per_tuple_ns / self.interned_ns
        } else {
            f64::NAN
        }
    }

    /// Classic-batch time over interned-batch time (> 1: interning beats the old
    /// normalization).
    pub fn speedup_vs_classic(&self) -> f64 {
        if self.interned_ns > 0.0 {
            self.classic_ns / self.interned_ns
        } else {
            f64::NAN
        }
    }
}

/// Runs one workload's stream through per-tuple `apply_all`, the classic
/// `DeltaBatch::from_updates` batch path, and the interned [`BatchNormalizer`](dbring::BatchNormalizer) batch
/// path, in chunks of `batch_size`, on the storage backend named by the type parameter
/// (the setup of `exp_intern`). Asserts on every run that the two batch paths reach
/// identical tables AND bit-identical `ExecStats`, and that both match the per-tuple
/// table — so pass an integer-valued workload.
pub fn intern_point<S: dbring::ViewStorage>(workload: &Workload, batch_size: usize) -> InternPoint {
    use dbring::{BatchNormalizer, DeltaBatch};
    let program = compile(&workload.catalog, &workload.query).expect("workload compiles");
    let streamed = workload.stream.len().max(1) as f64;
    let chunk_size = batch_size.max(1);

    let mut per_tuple = Executor::<S>::with_backend(program.clone());
    per_tuple
        .apply_all(&workload.initial)
        .expect("bulk load succeeds");
    per_tuple.reset_stats();
    let started = Instant::now();
    per_tuple
        .apply_all(&workload.stream)
        .expect("per-tuple path applies stream");
    let per_tuple_ns = started.elapsed().as_nanos() as f64 / streamed;

    let mut classic = Executor::<S>::with_backend(program.clone());
    classic
        .apply_all(&workload.initial)
        .expect("bulk load succeeds");
    classic.reset_stats();
    let started = Instant::now();
    for chunk in workload.stream.chunks(chunk_size) {
        let batch = DeltaBatch::from_updates(chunk);
        classic
            .apply_batch(&batch)
            .expect("classic batch path applies stream");
    }
    let classic_ns = started.elapsed().as_nanos() as f64 / streamed;

    let mut interned = Executor::<S>::with_backend(program);
    interned
        .apply_all(&workload.initial)
        .expect("bulk load succeeds");
    interned.reset_stats();
    let mut normalizer = BatchNormalizer::new();
    let started = Instant::now();
    for chunk in workload.stream.chunks(chunk_size) {
        let batch = normalizer.normalize(chunk);
        interned
            .apply_batch(&batch)
            .expect("interned batch path applies stream");
    }
    let interned_ns = started.elapsed().as_nanos() as f64 / streamed;

    // Parity every run: interning must change representation, never results or work.
    assert_eq!(
        interned.output_table(),
        classic.output_table(),
        "interned batch path must reach the classic table"
    );
    assert_eq!(
        interned.stats(),
        classic.stats(),
        "interned batch path must perform bit-identical ring work"
    );
    assert_eq!(
        per_tuple.output_table(),
        interned.output_table(),
        "batch paths must reach the per-tuple table"
    );
    assert_eq!(per_tuple.total_entries(), interned.total_entries());

    InternPoint {
        batch_size,
        per_tuple_ns,
        classic_ns,
        interned_ns,
        per_tuple_ops: per_tuple.stats().arithmetic_ops() as f64 / streamed,
        batch_ops: interned.stats().arithmetic_ops() as f64 / streamed,
    }
}

/// One row of the multi-view amortization sweep: total per-update cost of ingesting
/// one stream into a `Ring` of `k` views against `k` independent
/// `IncrementalView::apply_batch` loops over the same stream (same compiled programs,
/// same storage backend, same chunking — the differences are one shared `DeltaBatch`
/// normalization per chunk instead of `k`, routed dispatch, and — for the tracked
/// ring — base-snapshot maintenance, which is what buys late view registration).
#[derive(Clone, Copy, Debug)]
pub struct RingPoint {
    /// Number of standing views maintained.
    pub views: usize,
    /// Number of stream updates per ingested chunk.
    pub batch_size: usize,
    /// Mean per-update latency of the default ring (base tracking on), in ns. This is
    /// the *total* cost of keeping all `views` fresh for one update.
    pub ring_ns: f64,
    /// Mean per-update latency of a ring built `without_base_tracking` — capability
    /// parity with the independent views, which retain no base either — in ns.
    pub ring_untracked_ns: f64,
    /// Mean per-update latency of the `views` independent single-view loops, in ns.
    pub independent_ns: f64,
    /// Mean arithmetic operations per update summed over the ring's views (asserted
    /// *exactly* equal to the independent views' sum — routing shares work, it never
    /// changes it).
    pub ops_per_update: f64,
}

impl RingPoint {
    /// Independent-loops time over default-ring time (> 1 means the ring wins).
    pub fn speedup(&self) -> f64 {
        if self.ring_ns > 0.0 {
            self.independent_ns / self.ring_ns
        } else {
            f64::NAN
        }
    }

    /// Independent-loops time over untracked-ring time (capability-parity speedup).
    pub fn untracked_speedup(&self) -> f64 {
        if self.ring_untracked_ns > 0.0 {
            self.independent_ns / self.ring_untracked_ns
        } else {
            f64::NAN
        }
    }
}

/// Runs the first `views` queries of a [`MultiViewWorkload`](dbring_workloads::MultiViewWorkload) three ways — a default
/// ring, a ring without base tracking, and independent `IncrementalView`s — ingesting
/// the same stream in chunks of `batch_size` on the storage backend named by the type
/// parameter (the shared setup of `exp_ring`). Asserts, per view, that all three reach
/// identical tables *and* identical `ExecStats` — the ring's routed shared-batch
/// dispatch must change where normalization happens, never the ring work performed.
/// Pass an integer-valued workload (e.g. [`dbring_workloads::sales_dashboard`]) so
/// table equality is exact.
///
/// `S` must be one of the **in-tree** backends: the ring sides are configured through
/// `S::BACKEND` (the enum name), while the independent baseline is typed — for a
/// custom backend whose `BACKEND` merely names its closest in-tree relative, the
/// three paths would silently run different storage and the timing comparison would
/// be meaningless.
pub fn ring_point<S: dbring::ViewStorage + Send + 'static>(
    workload: &dbring_workloads::MultiViewWorkload,
    views: usize,
    batch_size: usize,
) -> RingPoint {
    use dbring::{RingBuilder, ViewDef};
    assert!(
        !workload.views.is_empty(),
        "ring_point needs a workload with at least one view"
    );
    let k = views.clamp(1, workload.views.len());
    let defs = &workload.views[..k];
    let streamed = workload.stream.len().max(1) as f64;
    let chunk = batch_size.max(1);

    let build_ring = |tracked: bool| {
        let builder = RingBuilder::new(workload.catalog.clone()).backend(S::BACKEND);
        let builder = if tracked {
            builder
        } else {
            builder.without_base_tracking()
        };
        let mut ring = builder.build();
        let ids: Vec<dbring::ViewId> = defs
            .iter()
            .map(|(name, query)| {
                ring.create_view(*name, ViewDef::Query(query.clone()))
                    .expect("dashboard views compile")
            })
            .collect();
        for piece in workload.initial.chunks(chunk) {
            ring.apply_batch(piece).expect("bulk load succeeds");
        }
        for &id in &ids {
            ring.view_mut(id).unwrap().reset_stats();
        }
        (ring, ids)
    };

    let (mut ring, ids) = build_ring(true);
    let started = Instant::now();
    for piece in workload.stream.chunks(chunk) {
        ring.apply_batch(piece).expect("ring ingests the stream");
    }
    let ring_ns = started.elapsed().as_nanos() as f64 / streamed;

    let (mut untracked, untracked_ids) = build_ring(false);
    let started = Instant::now();
    for piece in workload.stream.chunks(chunk) {
        untracked
            .apply_batch(piece)
            .expect("untracked ring ingests the stream");
    }
    let ring_untracked_ns = started.elapsed().as_nanos() as f64 / streamed;

    let mut independent: Vec<IncrementalView<S>> = defs
        .iter()
        .map(|(_, query)| {
            IncrementalView::<S>::with_backend(&workload.catalog, query.clone())
                .expect("dashboard views compile")
        })
        .collect();
    for view in &mut independent {
        for piece in workload.initial.chunks(chunk) {
            view.apply_batch(piece).expect("bulk load succeeds");
        }
        view.executor_mut().reset_stats();
    }
    let started = Instant::now();
    for view in &mut independent {
        for piece in workload.stream.chunks(chunk) {
            view.apply_batch(piece).expect("view ingests the stream");
        }
    }
    let independent_ns = started.elapsed().as_nanos() as f64 / streamed;

    // Fan-out parity: every view reaches the same table with exactly the same ring
    // work on all three paths — the amortization is normalization and dispatch, never
    // skipped maintenance.
    let mut total_ops = 0u64;
    for (i, &id) in ids.iter().enumerate() {
        let hosted = ring.view(id).unwrap();
        let solo = &independent[i];
        assert_eq!(
            hosted.table(),
            solo.table(),
            "ring and independent tables diverge on {}",
            hosted.name()
        );
        assert_eq!(
            hosted.stats(),
            solo.stats(),
            "ring and independent ExecStats diverge on {}",
            hosted.name()
        );
        let untracked_view = untracked.view(untracked_ids[i]).unwrap();
        assert_eq!(untracked_view.table(), solo.table());
        assert_eq!(untracked_view.stats(), solo.stats());
        total_ops += hosted.stats().arithmetic_ops();
    }

    RingPoint {
        views: k,
        batch_size: chunk,
        ring_ns,
        ring_untracked_ns,
        independent_ns,
        ops_per_update: total_ops as f64 / streamed,
    }
}

/// One row of the parallel-ingest sweep: total per-update cost of a ring ingesting one
/// chunked stream sequentially (`ingest_threads(1)`, the exact pre-parallelism code
/// path) against the same ring at a given thread budget (same compiled programs, same
/// storage backend, same chunking — the difference is purely fan-out across views and
/// key-range sharding within each view's batched flush).
#[derive(Clone, Copy, Debug)]
pub struct ParallelPoint {
    /// Thread budget of the parallel ring (`1` would make both sides identical).
    pub threads: usize,
    /// Number of standing views maintained.
    pub views: usize,
    /// Number of stream updates per ingested chunk.
    pub batch_size: usize,
    /// Number of stream updates ingested (after the bulk load).
    pub updates: usize,
    /// Mean per-update latency of the sequential ring, in nanoseconds.
    pub sequential_ns: f64,
    /// Mean per-update latency of the parallel ring, in nanoseconds.
    pub parallel_ns: f64,
}

impl ParallelPoint {
    /// Sequential time over parallel time (> 1 means parallelism wins).
    pub fn speedup(&self) -> f64 {
        if self.parallel_ns > 0.0 {
            self.sequential_ns / self.parallel_ns
        } else {
            f64::NAN
        }
    }
}

/// Runs the first `views` queries of a [`MultiViewWorkload`](dbring_workloads::MultiViewWorkload) through two rings — one
/// built with `ingest_threads(1)` and one with `ingest_threads(threads)` — ingesting
/// the same stream in chunks of `batch_size` on the storage backend named by the type
/// parameter (the shared setup of `exp_parallel` and the `parallel_ingest` bench).
///
/// **Parity is asserted on every run**, never sampled: per view, the parallel ring
/// must reach exactly the sequential ring's table *and* its exact `ExecStats` —
/// parallel dispatch and sharded flushes relocate work across threads, they must
/// never change what work is done. Pass an integer-valued workload (e.g.
/// [`dbring_workloads::sales_dashboard`]) so table equality is exact.
///
/// [`MultiViewWorkload`]: dbring_workloads::MultiViewWorkload
pub fn parallel_point<S: dbring::ViewStorage + Send + 'static>(
    workload: &dbring_workloads::MultiViewWorkload,
    views: usize,
    batch_size: usize,
    threads: usize,
) -> ParallelPoint {
    use dbring::{RingBuilder, ViewDef};
    assert!(
        !workload.views.is_empty(),
        "parallel_point needs a workload with at least one view"
    );
    let k = views.clamp(1, workload.views.len());
    let defs = &workload.views[..k];
    let streamed = workload.stream.len().max(1) as f64;
    let chunk = batch_size.max(1);

    let build_ring = |n_threads: usize| {
        let mut ring = RingBuilder::new(workload.catalog.clone())
            .backend(S::BACKEND)
            .ingest_threads(n_threads)
            .build();
        let ids: Vec<dbring::ViewId> = defs
            .iter()
            .map(|(name, query)| {
                ring.create_view(*name, ViewDef::Query(query.clone()))
                    .expect("workload views compile")
            })
            .collect();
        for piece in workload.initial.chunks(chunk) {
            ring.apply_batch(piece).expect("bulk load succeeds");
        }
        for &id in &ids {
            ring.view_mut(id).unwrap().reset_stats();
        }
        (ring, ids)
    };

    let (mut sequential, seq_ids) = build_ring(1);
    let started = Instant::now();
    for piece in workload.stream.chunks(chunk) {
        sequential
            .apply_batch(piece)
            .expect("sequential ring ingests the stream");
    }
    let sequential_ns = started.elapsed().as_nanos() as f64 / streamed;

    let (mut parallel, par_ids) = build_ring(threads.max(1));
    let started = Instant::now();
    for piece in workload.stream.chunks(chunk) {
        parallel
            .apply_batch(piece)
            .expect("parallel ring ingests the stream");
    }
    let parallel_ns = started.elapsed().as_nanos() as f64 / streamed;

    for (i, &id) in seq_ids.iter().enumerate() {
        let seq = sequential.view(id).unwrap();
        let par = parallel.view(par_ids[i]).unwrap();
        assert_eq!(
            seq.table(),
            par.table(),
            "parallel and sequential tables diverge on {}",
            seq.name()
        );
        assert_eq!(
            seq.stats(),
            par.stats(),
            "parallel and sequential ExecStats diverge on {}",
            seq.name()
        );
    }

    ParallelPoint {
        threads: threads.max(1),
        views: k,
        batch_size: chunk,
        updates: workload.stream.len(),
        sequential_ns,
        parallel_ns,
    }
}

/// One row of the staging-overhead sweep: total per-update cost of a ring ingesting
/// one chunked stream with failure-atomic staged batches (the default) against the
/// same ring built [`without_staged_ingest`] (the pre-staging direct path). The
/// difference is purely the undo log: staged ingest records one pre-image per map
/// write and drops the log on commit.
///
/// [`without_staged_ingest`]: dbring::RingBuilder::without_staged_ingest
#[derive(Clone, Copy, Debug)]
pub struct FaultPoint {
    /// Thread budget shared by both rings.
    pub threads: usize,
    /// Number of standing views maintained.
    pub views: usize,
    /// Number of stream updates per ingested chunk.
    pub batch_size: usize,
    /// Number of stream updates ingested (after the bulk load).
    pub updates: usize,
    /// Mean per-update latency of the direct (unstaged) ring, in nanoseconds.
    pub direct_ns: f64,
    /// Mean per-update latency of the staged (failure-atomic) ring, in nanoseconds.
    pub staged_ns: f64,
}

impl FaultPoint {
    /// Staged time over direct time (1.0 means staging is free; the acceptance
    /// target for this repo is ≤ ~1.05 on the dashboard workload).
    pub fn overhead(&self) -> f64 {
        if self.direct_ns > 0.0 {
            self.staged_ns / self.direct_ns
        } else {
            f64::NAN
        }
    }
}

/// Runs the first `views` queries of a [`MultiViewWorkload`](dbring_workloads::MultiViewWorkload) through two rings — one
/// with staged (failure-atomic) ingest, the default, and one built
/// [`without_staged_ingest`](dbring::RingBuilder::without_staged_ingest) — ingesting
/// the same stream in chunks of `batch_size` on the storage backend named by the type
/// parameter (the shared setup of `exp_faults`).
///
/// **Parity is asserted on every run**, never sampled: on a failure-free stream the
/// staged ring must reach exactly the direct ring's table *and* its exact
/// `ExecStats` per view — staging only adds an undo log, it must never change what
/// work the executor does. Pass an integer-valued workload (e.g.
/// [`dbring_workloads::sales_dashboard`]) so table equality is exact.
///
/// [`MultiViewWorkload`]: dbring_workloads::MultiViewWorkload
pub fn fault_point<S: dbring::ViewStorage + Send + 'static>(
    workload: &dbring_workloads::MultiViewWorkload,
    views: usize,
    batch_size: usize,
    threads: usize,
) -> FaultPoint {
    use dbring::{RingBuilder, ViewDef};
    assert!(
        !workload.views.is_empty(),
        "fault_point needs a workload with at least one view"
    );
    let k = views.clamp(1, workload.views.len());
    let defs = &workload.views[..k];
    let streamed = workload.stream.len().max(1) as f64;
    let chunk = batch_size.max(1);

    let build_ring = |staged: bool| {
        let builder = RingBuilder::new(workload.catalog.clone())
            .backend(S::BACKEND)
            .ingest_threads(threads.max(1));
        let builder = if staged {
            builder
        } else {
            builder.without_staged_ingest()
        };
        let mut ring = builder.build();
        let ids: Vec<dbring::ViewId> = defs
            .iter()
            .map(|(name, query)| {
                ring.create_view(*name, ViewDef::Query(query.clone()))
                    .expect("workload views compile")
            })
            .collect();
        for piece in workload.initial.chunks(chunk) {
            ring.apply_batch(piece).expect("bulk load succeeds");
        }
        for &id in &ids {
            ring.view_mut(id).unwrap().reset_stats();
        }
        (ring, ids)
    };

    let (mut direct, direct_ids) = build_ring(false);
    let started = Instant::now();
    for piece in workload.stream.chunks(chunk) {
        direct
            .apply_batch(piece)
            .expect("direct ring ingests the stream");
    }
    let direct_ns = started.elapsed().as_nanos() as f64 / streamed;

    let (mut staged, staged_ids) = build_ring(true);
    let started = Instant::now();
    for piece in workload.stream.chunks(chunk) {
        staged
            .apply_batch(piece)
            .expect("staged ring ingests the stream");
    }
    let staged_ns = started.elapsed().as_nanos() as f64 / streamed;

    for (i, &id) in direct_ids.iter().enumerate() {
        let d = direct.view(id).unwrap();
        let s = staged.view(staged_ids[i]).unwrap();
        assert_eq!(
            d.table(),
            s.table(),
            "staged and direct tables diverge on {}",
            d.name()
        );
        assert_eq!(
            d.stats(),
            s.stats(),
            "staged and direct ExecStats diverge on {}",
            d.name()
        );
    }

    FaultPoint {
        threads: threads.max(1),
        views: k,
        batch_size: chunk,
        updates: workload.stream.len(),
        direct_ns,
        staged_ns,
    }
}

/// Formats a nanosecond figure with a readable unit (`-` for NaN, i.e. "not measured").
pub fn fmt_ns(ns: f64) -> String {
    if ns.is_nan() {
        "-".to_string()
    } else if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Prints a separating header for experiment output.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_workloads::{customers_by_nation, self_join_count, WorkloadConfig};

    #[test]
    fn sweep_point_produces_sane_numbers() {
        let workload = self_join_count(WorkloadConfig {
            seed: 1,
            initial_size: 50,
            stream_length: 50,
            domain_size: 10,
            delete_fraction: 0.1,
        });
        let point = sweep_point(&workload, 50, 10);
        assert_eq!(point.initial_size, 50);
        assert!(point.recursive_ns > 0.0);
        assert!(point.classical_ns > 0.0);
        assert!(point.naive_ns > 0.0);
        assert!(point.recursive_ops > 0.0);
        assert_eq!(point.naive_measured, 10);
    }

    #[test]
    fn lowering_point_produces_sane_numbers() {
        let workload = self_join_count(WorkloadConfig {
            seed: 2,
            initial_size: 80,
            stream_length: 80,
            domain_size: 10,
            delete_fraction: 0.2,
        });
        let point = lowering_point(&workload);
        assert_eq!(point.initial_size, 80);
        assert!(point.lowered_ns > 0.0);
        assert!(point.interpreted_ns > 0.0);
        assert!(point.ops_per_update > 0.0);
        assert!(point.speedup() > 0.0);
    }

    #[test]
    fn storage_point_produces_sane_numbers() {
        let workload = customers_by_nation(WorkloadConfig {
            seed: 3,
            initial_size: 80,
            stream_length: 80,
            domain_size: 8,
            delete_fraction: 0.2,
        });
        let point = storage_point(&workload);
        assert_eq!(point.initial_size, 80);
        assert!(point.hash_ns > 0.0);
        assert!(point.ordered_ns > 0.0);
        assert!(point.ops_per_update > 0.0);
        assert!(point.ordered_over_hash() > 0.0);
        assert_eq!(
            point.hash_footprint.entries,
            point.ordered_footprint.entries
        );
        assert!(point.ordered_footprint.index_entries <= point.hash_footprint.index_entries);
    }

    #[test]
    fn batch_point_produces_sane_numbers_on_both_backends() {
        use dbring_workloads::sales_revenue_int;
        let workload = sales_revenue_int(WorkloadConfig {
            seed: 4,
            initial_size: 80,
            stream_length: 96,
            domain_size: 8,
            delete_fraction: 0.2,
        });
        for point in [
            batch_point::<dbring::HashViewStorage>(&workload, 32),
            batch_point::<dbring::OrderedViewStorage>(&workload, 32),
        ] {
            assert_eq!(point.batch_size, 32);
            assert!(point.per_tuple_ns > 0.0);
            assert!(point.batch_ns > 0.0);
            assert!(point.speedup() > 0.0);
            assert!(point.per_tuple_ops > 0.0);
            // Revenue per customer is degree-1: the batch path strictly saves ring work
            // whenever consolidation or weighted firing collapses anything (and never
            // does more).
            assert!(point.batch_ops <= point.per_tuple_ops);
        }
    }

    #[test]
    fn ring_point_produces_sane_numbers_on_both_backends() {
        use dbring_workloads::sales_dashboard;
        let workload = sales_dashboard(WorkloadConfig {
            seed: 5,
            initial_size: 64,
            stream_length: 96,
            domain_size: 8,
            delete_fraction: 0.2,
        });
        for point in [
            ring_point::<dbring::HashViewStorage>(&workload, 4, 32),
            ring_point::<dbring::OrderedViewStorage>(&workload, 4, 32),
        ] {
            assert_eq!(point.views, 4);
            assert_eq!(point.batch_size, 32);
            assert!(point.ring_ns > 0.0);
            assert!(point.ring_untracked_ns > 0.0);
            assert!(point.independent_ns > 0.0);
            assert!(point.ops_per_update > 0.0);
            assert!(point.speedup() > 0.0);
            assert!(point.untracked_speedup() > 0.0);
        }
        // The view count clamps to the workload's view list.
        let tiny = ring_point::<dbring::HashViewStorage>(&workload, 99, 32);
        assert_eq!(tiny.views, workload.views.len());
    }

    #[test]
    fn parallel_point_produces_sane_numbers_on_both_backends() {
        use dbring_workloads::sales_dashboard;
        let workload = sales_dashboard(WorkloadConfig {
            seed: 6,
            initial_size: 64,
            stream_length: 96,
            domain_size: 8,
            delete_fraction: 0.2,
        });
        for point in [
            parallel_point::<dbring::HashViewStorage>(&workload, 4, 32, 4),
            parallel_point::<dbring::OrderedViewStorage>(&workload, 4, 32, 4),
        ] {
            assert_eq!(point.threads, 4);
            assert_eq!(point.views, 4);
            assert_eq!(point.batch_size, 32);
            assert_eq!(point.updates, 96);
            assert!(point.sequential_ns > 0.0);
            assert!(point.parallel_ns > 0.0);
            assert!(point.speedup() > 0.0);
        }
        // threads = 1 degenerates to two identical sequential runs, still asserted.
        let flat = parallel_point::<dbring::HashViewStorage>(&workload, 4, 32, 1);
        assert_eq!(flat.threads, 1);
    }

    #[test]
    fn fault_point_produces_sane_numbers_on_both_backends() {
        use dbring_workloads::sales_dashboard;
        let workload = sales_dashboard(WorkloadConfig {
            seed: 6,
            initial_size: 64,
            stream_length: 96,
            domain_size: 8,
            delete_fraction: 0.2,
        });
        for point in [
            fault_point::<dbring::HashViewStorage>(&workload, 4, 32, 1),
            fault_point::<dbring::OrderedViewStorage>(&workload, 4, 32, 4),
        ] {
            assert_eq!(point.views, 4);
            assert_eq!(point.batch_size, 32);
            assert_eq!(point.updates, 96);
            assert!(point.direct_ns > 0.0);
            assert!(point.staged_ns > 0.0);
            assert!(point.overhead() > 0.0);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
    }

    #[test]
    fn intern_point_asserts_parity_and_produces_sane_numbers() {
        let workload = dbring_workloads::sales_revenue_int(WorkloadConfig {
            seed: 9,
            initial_size: 100,
            stream_length: 200,
            domain_size: 8,
            delete_fraction: 0.2,
        });
        let point = intern_point::<dbring::HashViewStorage>(&workload, 32);
        assert_eq!(point.batch_size, 32);
        assert!(point.per_tuple_ns > 0.0);
        assert!(point.classic_ns > 0.0);
        assert!(point.interned_ns > 0.0);
        assert!(point.per_tuple_ops >= point.batch_ops);
        assert!(point.speedup_vs_per_tuple() > 0.0);
        assert!(point.speedup_vs_classic() > 0.0);
        let ordered = intern_point::<dbring::OrderedViewStorage>(&workload, 32);
        assert_eq!(ordered.batch_ops, point.batch_ops);
    }

    #[test]
    fn bench_rows_render_as_json() {
        let rows = vec![
            BenchRow {
                series: "revenue/hash/interned".to_string(),
                batch_size: 256,
                ns_per_update: 123.5,
                ops_per_update: 3.0,
            },
            BenchRow {
                series: "revenue/hash/per_tuple".to_string(),
                batch_size: 1,
                ns_per_update: f64::NAN,
                ops_per_update: 6.0,
            },
        ];
        let json = bench_rows_json(&rows);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"series\": \"revenue/hash/interned\""));
        assert!(json.contains("\"batch_size\": 256"));
        assert!(json.contains("\"ns_per_update\": 123.5"));
        // Non-finite floats render as null, as serde_json would.
        assert!(json.contains("\"ns_per_update\": null"));
    }
}
