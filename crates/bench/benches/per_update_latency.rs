//! Criterion bench: per-update maintenance latency of the **lowered** (slot-resolved,
//! allocation-lean) executor against the **interpreted** reference path, across initial
//! database sizes.
//!
//! Both paths run the same compiled trigger program over the same storage and perform
//! identical ring operations (asserted by the `dbring-runtime` equivalence tests); any
//! gap is pure interpreter overhead — name hashing, per-binding environment clones, and
//! per-call bound-position derivation. Reference numbers live in `EXPERIMENTS.md`.
//!
//! Run with: `cargo bench -p dbring-bench --bench per_update_latency`
//! (append `-- lowered` or `-- interpreted` to smoke one side only, as CI does).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbring::{compile, Executor, InterpretedExecutor};
use dbring_workloads::{customers_by_nation, self_join_count, WorkloadConfig};
use std::hint::black_box;

type WorkloadMaker = fn(usize) -> dbring_workloads::Workload;

fn bench_per_update(c: &mut Criterion) {
    let cases: Vec<(&str, WorkloadMaker)> = vec![
        ("self_join_count", |n| {
            self_join_count(WorkloadConfig {
                seed: 7,
                initial_size: n,
                stream_length: 512,
                domain_size: 100,
                delete_fraction: 0.2,
            })
        }),
        ("customers_by_nation", |n| {
            customers_by_nation(WorkloadConfig {
                seed: 8,
                initial_size: n,
                stream_length: 512,
                domain_size: 12,
                delete_fraction: 0.2,
            })
        }),
    ];

    let mut group = c.benchmark_group("per_update_latency");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    for (name, make) in cases {
        for size in [1_000usize, 10_000] {
            let workload = make(size);
            let program = compile(&workload.catalog, &workload.query).unwrap();

            group.bench_function(BenchmarkId::new(format!("{name}/lowered"), size), |b| {
                let mut exec = Executor::new(program.clone());
                exec.apply_all(&workload.initial).unwrap();
                let mut i = 0usize;
                b.iter(|| {
                    let update = &workload.stream[i % workload.stream.len()];
                    exec.apply(black_box(update)).unwrap();
                    i += 1;
                });
            });

            group.bench_function(BenchmarkId::new(format!("{name}/interpreted"), size), |b| {
                let mut exec = InterpretedExecutor::new(program.clone());
                exec.apply_all(&workload.initial).unwrap();
                let mut i = 0usize;
                b.iter(|| {
                    let update = &workload.stream[i % workload.stream.len()];
                    exec.apply(black_box(update)).unwrap();
                    i += 1;
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_per_update);
criterion_main!(benches);
