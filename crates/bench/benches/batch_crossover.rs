//! Criterion bench: per-tuple `apply_all` against chunked `apply_batch` (DeltaBatch
//! normalization included) at several batch sizes, on both storage backends.
//!
//! Every measurement applies the *same* number of stream updates per iteration (one
//! chunk of `batch_size`), so the per-tuple and batch ids at one size are directly
//! comparable; `per_tuple` at size k is the apply_all baseline over the same chunk.
//! Reference numbers and the measured crossover batch sizes live in `EXPERIMENTS.md`
//! (regenerate with `exp_batch`).
//!
//! Run with: `cargo bench -p dbring-bench --bench batch_crossover`
//! (append `-- batch` or `-- per_tuple` to smoke one side only, as CI does).

use criterion::{criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion};
use dbring::{
    compile, BatchNormalizer, Executor, HashViewStorage, OrderedViewStorage, TriggerProgram,
    ViewStorage,
};
use dbring_workloads::{customers_by_nation, sales_revenue_int, WorkloadConfig};
use std::hint::black_box;

/// One backend's measurements at one batch size: identical chunk scheme on both paths.
fn bench_backend<S: ViewStorage>(
    group: &mut BenchmarkGroup<'_>,
    backend: &str,
    case: &str,
    batch_size: usize,
    program: &TriggerProgram,
    workload: &dbring_workloads::Workload,
) {
    let chunks: Vec<&[dbring::Update]> = workload.stream.chunks(batch_size).collect();
    group.bench_function(
        BenchmarkId::new(format!("{case}/{backend}/per_tuple"), batch_size),
        |b| {
            let mut exec = Executor::<S>::with_backend(program.clone());
            exec.apply_all(&workload.initial).unwrap();
            let mut i = 0usize;
            b.iter(|| {
                let chunk = chunks[i % chunks.len()];
                exec.apply_all(black_box(chunk)).unwrap();
                i += 1;
            });
        },
    );
    group.bench_function(
        BenchmarkId::new(format!("{case}/{backend}/batch"), batch_size),
        |b| {
            let mut exec = Executor::<S>::with_backend(program.clone());
            exec.apply_all(&workload.initial).unwrap();
            // The production batch path: interned fixed-width normalization with
            // scratch persisting across iterations, as in `Ring::apply_batch`.
            let mut normalizer = BatchNormalizer::new();
            let mut i = 0usize;
            b.iter(|| {
                let chunk = chunks[i % chunks.len()];
                // Normalization is measured: the per-tuple path does not pay it.
                let batch = normalizer.normalize(black_box(chunk));
                exec.apply_batch(&batch).unwrap();
                i += 1;
            });
        },
    );
}

fn bench_batch_crossover(c: &mut Criterion) {
    // One weighted (degree-1) workload where batching saves ring work, and one
    // unit-replay workload where it can only save dispatch constants.
    let revenue = sales_revenue_int(WorkloadConfig {
        seed: 27,
        initial_size: 1_000,
        stream_length: 1_024,
        domain_size: 64,
        delete_fraction: 0.2,
    });
    let customers = customers_by_nation(WorkloadConfig {
        seed: 28,
        initial_size: 1_000,
        stream_length: 1_024,
        domain_size: 12,
        delete_fraction: 0.2,
    });

    let mut group = c.benchmark_group("batch_crossover");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    for (case, workload) in [
        ("sales_revenue_int", &revenue),
        ("customers_by_nation", &customers),
    ] {
        let program = compile(&workload.catalog, &workload.query).unwrap();
        for batch_size in [8usize, 64, 256] {
            bench_backend::<HashViewStorage>(
                &mut group, "hash", case, batch_size, &program, workload,
            );
            bench_backend::<OrderedViewStorage>(
                &mut group, "ordered", case, batch_size, &program, workload,
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_batch_crossover);
criterion_main!(benches);
