//! Criterion bench for Experiment E1 (Figure 1 / Section 1.1): per-update cost of the
//! recursive delta memo versus re-evaluating the polynomial from scratch.
//!
//! For a plain machine-arithmetic polynomial, re-evaluation is of course a couple of
//! nanoseconds and wins outright — the memoization table exists to make the *structure* of
//! Section 1.1 concrete and measurable (a fixed number of additions per update,
//! independent of the function), not to speed up `x²`. The pay-off appears when "one
//! evaluation of f" is an aggregate query over a database, which is what the other
//! benchmarks measure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbring::{Polynomial, RecursiveMemo};
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_poly");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for degree in [2usize, 4, 6] {
        // f(x) = x^degree plus lower-order terms.
        let coeffs: Vec<i64> = (0..=degree as i64).collect();
        let f = Polynomial::new(coeffs);
        let updates = vec![1i64, -1];

        group.bench_with_input(
            BenchmarkId::new("memoized_update", degree),
            &degree,
            |b, _| {
                let mut memo = RecursiveMemo::new(&f, &0, updates.clone());
                let mut flip = 0usize;
                b.iter(|| {
                    memo.apply(flip % 2);
                    flip += 1;
                    black_box(memo.current())
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("full_reevaluation", degree),
            &degree,
            |b, _| {
                let mut x = 0i64;
                let mut flip = 0i64;
                b.iter(|| {
                    x += if flip % 2 == 0 { 1 } else { -1 };
                    flip += 1;
                    black_box(f.eval(&x))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
