//! Criterion bench for Experiment E3 (Example 1.3): maintaining the three-way sum join
//! with the factorized compiled program versus evaluating the (unfactorized) first-order
//! delta query per update, at two active-domain sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbring::{ClassicalIvm, IncrementalView, MaintenanceStrategy};
use dbring_workloads::{rst_sum_join, WorkloadConfig};
use std::hint::black_box;

fn bench_sum_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("rst_sum_join_per_update");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    for domain in [100usize, 400] {
        let workload = rst_sum_join(WorkloadConfig {
            seed: 9,
            initial_size: 6_000,
            stream_length: 512,
            domain_size: domain,
            delete_fraction: 0.1,
        });
        let initial_db = workload.initial_database();
        let mut loaded = IncrementalView::new(&workload.catalog, workload.query.clone()).unwrap();
        loaded.apply_all(&workload.initial).unwrap();
        let initial_result = loaded.table();

        group.bench_with_input(
            BenchmarkId::new("recursive_ivm_factorized", domain),
            &domain,
            |b, _| {
                let mut view = loaded.clone();
                let mut i = 0usize;
                b.iter(|| {
                    let update = &workload.stream[i % workload.stream.len()];
                    view.apply(black_box(update)).unwrap();
                    i += 1;
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("classical_ivm_delta_query", domain),
            &domain,
            |b, _| {
                let mut strategy = ClassicalIvm::with_initial_result(
                    initial_db.clone(),
                    workload.query.clone(),
                    initial_result.clone(),
                )
                .unwrap();
                let mut i = 0usize;
                b.iter(|| {
                    let update = &workload.stream[i % workload.stream.len()];
                    strategy.apply_update(black_box(update)).unwrap();
                    i += 1;
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sum_join);
criterion_main!(benches);
