//! Criterion bench for Experiment E5 (Example 5.2): per-update maintenance of the grouped
//! customers-by-nation query, plus the cost of compiling it and of initializing the view
//! hierarchy from a loaded database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbring::{compile, Executor, IncrementalView};
use dbring_workloads::{customers_by_nation, WorkloadConfig};
use std::hint::black_box;

fn bench_customers(c: &mut Criterion) {
    let mut group = c.benchmark_group("customers_group_by");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Compilation cost (query -> trigger program).
    let workload = customers_by_nation(WorkloadConfig::small(3));
    group.bench_function("compile_query", |b| {
        b.iter(|| black_box(compile(&workload.catalog, &workload.query).unwrap()));
    });

    for size in [2_000usize, 8_000] {
        let workload = customers_by_nation(WorkloadConfig {
            seed: 3,
            initial_size: size,
            stream_length: 512,
            domain_size: 12,
            delete_fraction: 0.2,
        });
        let initial_db = workload.initial_database();
        let program = compile(&workload.catalog, &workload.query).unwrap();

        // Evaluating the view definitions over a loaded database is only benchmarked at
        // the smaller size (it materializes the full self-join, which is exactly the cost
        // the incremental path avoids).
        if size == 2_000 {
            group.bench_with_input(
                BenchmarkId::new("initialize_views_from_db", size),
                &size,
                |b, _| {
                    b.iter(|| {
                        let mut exec = Executor::new(program.clone());
                        exec.initialize_from(black_box(&initial_db)).unwrap();
                        black_box(exec.total_entries())
                    });
                },
            );
        }

        let mut loaded = IncrementalView::new(&workload.catalog, workload.query.clone()).unwrap();
        loaded.apply_all(&workload.initial).unwrap();

        group.bench_with_input(
            BenchmarkId::new("recursive_ivm_per_update", size),
            &size,
            |b, _| {
                let mut view = loaded.clone();
                let mut i = 0usize;
                b.iter(|| {
                    let update = &workload.stream[i % workload.stream.len()];
                    view.apply(black_box(update)).unwrap();
                    i += 1;
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_customers);
criterion_main!(benches);
