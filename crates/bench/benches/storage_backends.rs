//! Criterion bench: per-update maintenance latency of the lowered executor across
//! [`ViewStorage`](dbring::ViewStorage) backends — the default hash backend against the
//! ordered (`BTreeMap` + range-scan) backend.
//!
//! Both backends run the same lowered plan and perform identical ring operations (the
//! `dbring-runtime` storage-equivalence tests assert this operation-for-operation); any
//! gap is the physical trade-off: O(1) hash probes vs O(log n) ordered probes, hash
//! slice-index maintenance vs sorted-prefix range scans. Reference numbers live in
//! `EXPERIMENTS.md`.
//!
//! Run with: `cargo bench -p dbring-bench --bench storage_backends`
//! (append `-- hash` or `-- ordered` to smoke one backend only, as CI does).

use criterion::{criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion};
use dbring::{compile, Executor, HashViewStorage, OrderedViewStorage, TriggerProgram, ViewStorage};
use dbring_workloads::{customers_by_nation, orders_lineitems, self_join_count, WorkloadConfig};
use std::hint::black_box;

type WorkloadMaker = fn(usize) -> dbring_workloads::Workload;

/// One backend's measurement: identical iteration scheme for every backend, so the
/// hash-vs-ordered comparison cannot drift.
fn bench_backend<S: ViewStorage>(
    group: &mut BenchmarkGroup<'_>,
    id: BenchmarkId,
    program: &TriggerProgram,
    workload: &dbring_workloads::Workload,
) {
    group.bench_function(id, |b| {
        let mut exec = Executor::<S>::with_backend(program.clone());
        exec.apply_all(&workload.initial).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            let update = &workload.stream[i % workload.stream.len()];
            exec.apply(black_box(update)).unwrap();
            i += 1;
        });
    });
}

fn bench_storage_backends(c: &mut Criterion) {
    let cases: Vec<(&str, WorkloadMaker)> = vec![
        ("self_join_count", |n| {
            self_join_count(WorkloadConfig {
                seed: 17,
                initial_size: n,
                stream_length: 512,
                domain_size: 100,
                delete_fraction: 0.2,
            })
        }),
        ("customers_by_nation", |n| {
            customers_by_nation(WorkloadConfig {
                seed: 18,
                initial_size: n,
                stream_length: 512,
                domain_size: 12,
                delete_fraction: 0.2,
            })
        }),
        ("orders_lineitems", |n| {
            orders_lineitems(WorkloadConfig {
                seed: 19,
                initial_size: n,
                stream_length: 512,
                domain_size: (n / 10).max(20),
                delete_fraction: 0.1,
            })
        }),
    ];

    let mut group = c.benchmark_group("storage_backends");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    for (name, make) in cases {
        for size in [1_000usize, 10_000] {
            let workload = make(size);
            let program = compile(&workload.catalog, &workload.query).unwrap();

            bench_backend::<HashViewStorage>(
                &mut group,
                BenchmarkId::new(format!("{name}/hash"), size),
                &program,
                &workload,
            );
            bench_backend::<OrderedViewStorage>(
                &mut group,
                BenchmarkId::new(format!("{name}/ordered"), size),
                &program,
                &workload,
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_storage_backends);
criterion_main!(benches);
