//! Criterion bench for Experiment E2 (Example 1.2): per-update maintenance of the
//! self-join count under the three strategies, at a fixed database size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dbring::{ClassicalIvm, IncrementalView, MaintenanceStrategy, NaiveReeval};
use dbring_workloads::{self_join_count, WorkloadConfig};
use std::hint::black_box;

fn bench_self_join(c: &mut Criterion) {
    let workload = self_join_count(WorkloadConfig {
        seed: 7,
        initial_size: 5_000,
        stream_length: 512,
        domain_size: 100,
        delete_fraction: 0.2,
    });
    let initial_db = workload.initial_database();
    // Bulk-load the starting database once by streaming it through the compiled triggers;
    // the baselines are seeded with the identical starting result.
    let mut loaded = IncrementalView::new(&workload.catalog, workload.query.clone()).unwrap();
    loaded.apply_all(&workload.initial).unwrap();
    let initial_result = loaded.table();

    let mut group = c.benchmark_group("self_join_count_per_update");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("recursive_ivm", |b| {
        let mut view = loaded.clone();
        let mut i = 0usize;
        b.iter(|| {
            let update = &workload.stream[i % workload.stream.len()];
            view.apply(black_box(update)).unwrap();
            i += 1;
        });
    });

    group.bench_function("classical_ivm", |b| {
        let mut strategy = ClassicalIvm::with_initial_result(
            initial_db.clone(),
            workload.query.clone(),
            initial_result.clone(),
        )
        .unwrap();
        let mut i = 0usize;
        b.iter(|| {
            let update = &workload.stream[i % workload.stream.len()];
            strategy.apply_update(black_box(update)).unwrap();
            i += 1;
        });
    });

    // Naive re-evaluation is far slower; measure it over single updates from a cloned
    // starting state so the database does not keep growing across samples.
    group.sample_size(10);
    group.bench_function("naive_reevaluation", |b| {
        let strategy = NaiveReeval::new(initial_db.clone(), workload.query.clone()).unwrap();
        let mut i = 0usize;
        b.iter_batched(
            || strategy.clone(),
            |mut s| {
                let update = &workload.stream[i % workload.stream.len()];
                s.apply_update(black_box(update)).unwrap();
                i += 1;
                s
            },
            BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_self_join);
criterion_main!(benches);
