//! Criterion bench for Experiment E7 (the complexity separation, Theorem 7.1 measured
//! sequentially): per-update latency of recursive IVM versus classical first-order IVM as
//! the initial database size grows. Recursive IVM's curve must stay flat; the baseline's
//! must grow. (Naive re-evaluation is covered by the `exp_separation` binary; it is too
//! slow to include in a Criterion sweep.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbring::{ClassicalIvm, IncrementalView, MaintenanceStrategy};
use dbring_workloads::{customers_by_nation, WorkloadConfig};
use std::hint::black_box;

fn bench_separation(c: &mut Criterion) {
    let mut group = c.benchmark_group("separation_customers");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    for size in [1_000usize, 4_000, 16_000] {
        let workload = customers_by_nation(WorkloadConfig {
            seed: 77,
            initial_size: size,
            stream_length: 512,
            domain_size: 12,
            delete_fraction: 0.2,
        });
        let initial_db = workload.initial_database();
        let mut loaded = IncrementalView::new(&workload.catalog, workload.query.clone()).unwrap();
        loaded.apply_all(&workload.initial).unwrap();
        let initial_result = loaded.table();
        group.throughput(Throughput::Elements(1));

        group.bench_with_input(BenchmarkId::new("recursive_ivm", size), &size, |b, _| {
            let mut view = loaded.clone();
            let mut i = 0usize;
            b.iter(|| {
                let update = &workload.stream[i % workload.stream.len()];
                view.apply(black_box(update)).unwrap();
                i += 1;
            });
        });

        group.bench_with_input(BenchmarkId::new("classical_ivm", size), &size, |b, _| {
            let mut strategy = ClassicalIvm::with_initial_result(
                initial_db.clone(),
                workload.query.clone(),
                initial_result.clone(),
            )
            .unwrap();
            let mut i = 0usize;
            b.iter(|| {
                let update = &workload.stream[i % workload.stream.len()];
                strategy.apply_update(black_box(update)).unwrap();
                i += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_separation);
criterion_main!(benches);
