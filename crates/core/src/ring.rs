//! The [`Ring`] engine: one catalog, many standing views, one ingest path.
//!
//! The paper maintains a whole *hierarchy* of materialized aggregates under a single
//! stream of single-tuple updates — and its successor systems (DBToaster's generated
//! programs, differential dataflow's workers) all converge on the same shape: one
//! engine object hosting every maintained view, fed once. [`Ring`] is that object for
//! this workspace:
//!
//! * **One catalog.** A ring is built over one schema ([`RingBuilder::new`]) or one
//!   loaded database ([`RingBuilder::from_database`]); every view it hosts is parsed,
//!   validated and compiled against that catalog. A query naming an undeclared
//!   relation is rejected at [`Ring::create_view`] with
//!   [`Error::UnknownRelation`](crate::Error::UnknownRelation) — a dedicated,
//!   immediate error instead of a late compile error.
//! * **Many standing views.** [`Ring::create_view`] accepts a [`ViewDef`] (SQL, AGCA
//!   text, or a parsed [`Query`]) and returns a [`ViewId`]; views can be created and
//!   [dropped](Ring::drop_view) at any point in the stream. A view created *after*
//!   updates have been ingested is backfilled from the ring's base snapshot, so it is
//!   indistinguishable from one that watched the stream from the start.
//! * **One ingest path.** Updates go to the ring ([`Ring::insert`], [`Ring::delete`],
//!   [`Ring::apply`], [`Ring::apply_all`], [`Ring::apply_batch`]), which validates
//!   them against the catalog once, normalizes batches into a
//!   [`DeltaBatch`](crate::DeltaBatch) **once**, and routes work only to the views
//!   whose programs read the touched relations — `k` views over one stream cost one
//!   normalization, not `k`.
//! * **Failure-atomic ingest.** By default every update and batch is *staged* on all
//!   touched views and committed only when all of them succeed; a failure (including
//!   a panicking engine) rolls every view back, so a rejected batch lands nowhere. A
//!   view whose engine panicked is **quarantined** — reads refuse it, ingest skips
//!   it — until [`Ring::repair_view`] rebuilds it from the base snapshot.
//!
//! Reads go through the cheap [`ViewRef`] / [`ViewMut`] handles: result values and
//! tables, work counters, storage footprints, and the compiled program (including its
//! NC0C rendering) per view.
//!
//! The single-view [`IncrementalView`](crate::IncrementalView) facade survives as a
//! thin wrapper over a one-view ring.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

use dbring_agca::ast::Query;
use dbring_agca::parser::parse_query;
use dbring_agca::sql::parse_sql;
use dbring_algebra::Number;
use dbring_compiler::{compile, generate_nc0c, Diagnostic, TriggerProgram};
use dbring_relations::{BatchNormalizer, Database, DeltaBatch, Interner, Snapshot, Update, Value};
use dbring_runtime::{
    boxed_engine, EngineRegistry, ExecStats, Executor, ParallelConfig, RuntimeError,
    SnapshotAccess, SnapshotStore, StorageBackend, StorageFootprint, ViewEngine, ViewSnapshot,
    ViewStorage,
};

use crate::{Catalog, Error};

/// How a view's engine is (re)built from its compiled program — kept per view so
/// [`Ring::repair_view`] can rebuild exactly the kind of engine the view was created
/// with, including typed custom-backend executors the [`StorageBackend`] enum cannot
/// name.
type EngineFactory = Arc<dyn Fn(TriggerProgram) -> Box<dyn ViewEngine> + Send + Sync>;

/// The stable identity of a standing view inside one [`Ring`].
///
/// Ids are handed out by [`Ring::create_view`], stay valid until the view is
/// [dropped](Ring::drop_view), and are **never reused** within a ring — a stale id of a
/// dropped view can only yield [`Error::UnknownView`](crate::Error::UnknownView), never
/// silently address a different view.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ViewId(pub(crate) u32);

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view#{}", self.0)
    }
}

/// How a standing view is defined when handed to [`Ring::create_view`]: the SQL subset,
/// the AGCA text syntax, or an already-parsed [`Query`].
#[derive(Clone, Debug)]
pub enum ViewDef<'a> {
    /// A SQL aggregate query (the Section 5 subset), e.g.
    /// `"SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust"`.
    Sql(&'a str),
    /// The AGCA text syntax, e.g. `"q[c] := Sum(C(c, n) * C(c2, n))"`.
    Agca(&'a str),
    /// An already-parsed query (no parsing happens; it is validated and compiled
    /// as-is).
    Query(Query),
}

/// Builds a [`Ring`]: catalog plus engine configuration, all chosen **by value** — no
/// turbofish, so the backend (and any future strategy choice) can come from a config
/// file or CLI flag.
///
/// ```
/// use dbring::{Catalog, RingBuilder, StorageBackend};
///
/// let mut catalog = Catalog::new();
/// catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
/// let ring = RingBuilder::new(catalog)
///     .backend(StorageBackend::Ordered)
///     .build();
/// assert!(ring.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct RingBuilder {
    catalog: Database,
    snapshot: Snapshot,
    backend: StorageBackend,
    track_base: bool,
    parallel: ParallelConfig,
    staged: bool,
}

impl RingBuilder {
    /// Starts a ring over a schema. Only the catalog's *declarations* travel — any
    /// contents are ignored (a catalog is a database whose contents are ignored); use
    /// [`RingBuilder::from_database`] to start from loaded data.
    pub fn new(catalog: Catalog) -> Self {
        RingBuilder {
            catalog: catalog.schema_only(),
            snapshot: Snapshot::new(),
            backend: StorageBackend::Hash,
            track_base: true,
            parallel: ParallelConfig::default(),
            staged: true,
        }
    }

    /// Starts a ring over a loaded database: its schema becomes the catalog and its
    /// contents become the initial base snapshot, so every view — created now or later
    /// — is backfilled as if the database had been streamed in first.
    pub fn from_database(db: Database) -> Self {
        RingBuilder {
            snapshot: Snapshot::from_database(&db),
            catalog: db.schema_only(),
            backend: StorageBackend::Hash,
            track_base: true,
            parallel: ParallelConfig::default(),
            staged: true,
        }
    }

    /// Selects the storage backend every view's materialized maps live in (default:
    /// [`StorageBackend::Hash`]).
    pub fn backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the thread budget for batch ingest: how many worker threads
    /// [`Ring::apply_batch`] may fan a shared batch out on across views, and how many
    /// key-range shards a single view may split a large batched flush into. Default:
    /// available parallelism, overridable with the `DBRING_INGEST_THREADS`
    /// environment variable. `threads = 1` (values clamp to at least 1) forces the
    /// exact sequential path. Results are identical either way for integer
    /// aggregates; float aggregates may differ by rounding, as with any
    /// accumulation-order change.
    pub fn ingest_threads(mut self, threads: usize) -> Self {
        self.parallel = ParallelConfig::with_threads(threads);
        self
    }

    /// Sets the full parallel-ingest configuration (see [`ParallelConfig`]);
    /// [`RingBuilder::ingest_threads`] is the shorthand for the thread count alone.
    pub fn parallelism(mut self, config: ParallelConfig) -> Self {
        self.parallel = config;
        self
    }

    /// Disables the stage/commit ingest protocol: failed updates and batches may then
    /// leave *some* views applied and others not (the pre-staging contract), in
    /// exchange for skipping the pre-image logging staged ingest pays per write. The
    /// deterministic lowest-slot error contract is unaffected. Exists for measurement
    /// (the `exp_faults` baseline) and for pipelines that discard the whole ring on
    /// any error anyway.
    pub fn without_staged_ingest(mut self) -> Self {
        self.staged = false;
        self
    }

    /// Disables base-snapshot maintenance. The ring then stores *nothing* beyond the
    /// views themselves (the paper's "no access to the base relations" regime, and the
    /// cheapest ingest path) — but views can no longer be created after updates have
    /// been ingested: [`Ring::create_view`] would have no snapshot to backfill from
    /// and returns [`Error::BackfillUnavailable`](crate::Error::BackfillUnavailable).
    pub fn without_base_tracking(mut self) -> Self {
        self.track_base = false;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Ring {
        let mut registry = EngineRegistry::with_parallelism(self.parallel);
        registry.set_staging(self.staged);
        Ring {
            catalog: self.catalog,
            snapshot: self.snapshot,
            backend: self.backend,
            track_base: self.track_base,
            ingested: 0,
            registry,
            infos: Vec::new(),
            names: BTreeMap::new(),
            normalizer: BatchNormalizer::new(),
            snapshots: Arc::new(SnapshotStore::new()),
            serving: AtomicBool::new(false),
            publish_ns: AtomicU64::new(0),
        }
    }
}

/// Per-view metadata the ring keeps next to the hosted engine.
#[derive(Clone)]
struct ViewInfo {
    name: String,
    query: Query,
    /// Rebuilds this view's engine from a compiled program (see [`Ring::repair_view`]).
    factory: EngineFactory,
}

impl fmt::Debug for ViewInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ViewInfo")
            .field("name", &self.name)
            .field("query", &self.query)
            .finish_non_exhaustive()
    }
}

/// The multi-view incremental engine: hosts any number of standing aggregate views
/// over one catalog and maintains all of them from one update stream — one catalog
/// ([`Ring::catalog`]), many standing views ([`Ring::create_view`] /
/// [`Ring::drop_view`] / [`ViewRef`]), one ingest path ([`Ring::apply`],
/// [`Ring::apply_batch`]: validate once, normalize once, route to readers). See
/// [`RingBuilder`] for construction.
///
/// ```
/// use dbring::{Catalog, RingBuilder, Value, ViewDef};
///
/// let mut catalog = Catalog::new();
/// catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
/// let mut ring = RingBuilder::new(catalog).build();
///
/// let revenue = ring.create_view(
///     "revenue",
///     ViewDef::Sql("SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust"),
/// ).unwrap();
/// let orders = ring.create_view(
///     "orders",
///     ViewDef::Sql("SELECT cust, SUM(1) AS orders FROM Sales GROUP BY cust"),
/// ).unwrap();
///
/// // One stream, every view stays fresh.
/// ring.insert("Sales", vec![Value::int(1), Value::float(9.5), Value::int(2)]).unwrap();
/// ring.insert("Sales", vec![Value::int(1), Value::float(0.5), Value::int(1)]).unwrap();
/// assert_eq!(ring.view(revenue).unwrap().value(&[Value::int(1)]).as_f64(), 19.5);
/// assert_eq!(ring.view(orders).unwrap().value(&[Value::int(1)]).as_f64(), 2.0);
/// ```
#[derive(Debug)]
pub struct Ring {
    /// The schema every view is validated and compiled against (declarations only).
    catalog: Database,
    /// The write-optimized positional mirror of the base relations — while
    /// [`Ring::snapshot_current`] holds, this is what late-registered views are
    /// backfilled from. Maintaining it costs one hash-map update per tuple; the
    /// schema-carrying [`Database`] form is materialized only per backfill.
    snapshot: Snapshot,
    backend: StorageBackend,
    track_base: bool,
    /// Single-tuple updates ingested so far (batch weights included).
    ingested: u64,
    registry: EngineRegistry,
    /// Slot-parallel view metadata (`None` = dropped, like the registry's tombstones).
    infos: Vec<Option<ViewInfo>>,
    names: BTreeMap<String, ViewId>,
    /// Reusable interned-key batch normalizer: [`Ring::apply_batch`] consolidates on
    /// fixed-width keys with scratch (buckets, key pool, string interner) persisting
    /// across batches. Interner ids are stable for the ring's lifetime — view churn
    /// ([`Ring::drop_view`], [`Ring::repair_view`]) never invalidates them.
    normalizer: BatchNormalizer,
    /// The read-side publication slots, shared with every [`RingHandle`] the ring
    /// hands out. Slot indices parallel the registry's. Interior-mutable so the
    /// ingest path can publish through `&self` borrows of sibling fields.
    snapshots: Arc<SnapshotStore>,
    /// Whether snapshot publication is live. Flipped on (permanently) by the first
    /// read-side request — [`Ring::reader`] / [`Ring::snapshot`] — so rings that are
    /// never read through snapshots pay a single untaken branch per commit.
    serving: AtomicBool,
    /// Cumulative wall-clock nanoseconds spent publishing snapshots (the write-side
    /// cost of the read path; see [`Ring::snapshot_publish_ns`]).
    publish_ns: AtomicU64,
}

impl Clone for Ring {
    /// Clones the ring's state — catalog, engines, base snapshot, counters — with a
    /// **fresh** publication store: the clone publishes to its own slots, never to
    /// the original's readers (a [`RingHandle`] keeps addressing the ring it came
    /// from). Serving state carries over: if the original was serving, the clone
    /// starts serving too, with its views republished from the cloned engines.
    fn clone(&self) -> Self {
        let clone = Ring {
            catalog: self.catalog.clone(),
            snapshot: self.snapshot.clone(),
            backend: self.backend,
            track_base: self.track_base,
            ingested: self.ingested,
            registry: self.registry.clone(),
            infos: self.infos.clone(),
            names: self.names.clone(),
            normalizer: self.normalizer.clone(),
            snapshots: Arc::new(SnapshotStore::new()),
            serving: AtomicBool::new(false),
            publish_ns: AtomicU64::new(0),
        };
        // Mirror the slot layout (tombstones included) so ids stay aligned.
        for slot in 0..clone.infos.len() {
            match &clone.infos[slot] {
                Some(info) => {
                    clone.snapshots.register(ViewSnapshot::new(
                        Arc::from(info.name.as_str()),
                        0,
                        clone.ingested,
                        Vec::new(),
                    ));
                    if clone.registry.is_poisoned(slot as u32) {
                        clone.snapshots.poison(slot as u32);
                    }
                }
                None => clone.snapshots.register_dropped(),
            }
        }
        if self.serving.load(AtomicOrdering::Relaxed) {
            clone.enable_serving();
        }
        clone
    }
}

impl Ring {
    /// Shorthand for [`RingBuilder::new`].
    pub fn builder(catalog: Catalog) -> RingBuilder {
        RingBuilder::new(catalog)
    }

    /// The catalog the ring's views are compiled against (declarations only; the
    /// base contents live in the write-optimized snapshot — see
    /// [`Ring::base_snapshot`]).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The storage backend the ring's views run on.
    pub fn backend(&self) -> StorageBackend {
        self.backend
    }

    /// The configured batch-ingest thread budget (see
    /// [`RingBuilder::ingest_threads`]); `1` means strictly sequential ingest.
    pub fn ingest_threads(&self) -> usize {
        self.registry.parallelism().threads
    }

    /// Whether ingest runs the stage/commit protocol (the default; see
    /// [`RingBuilder::without_staged_ingest`]).
    pub fn staged_ingest(&self) -> bool {
        self.registry.staging()
    }

    /// Number of live views.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the ring hosts no views.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// Total single-tuple updates ingested so far. Batches count their *consolidated*
    /// weight: a `+t`/`-t` pair that cancels inside one batch was never ingested as
    /// far as the views (or the snapshot) are concerned.
    pub fn updates_ingested(&self) -> u64 {
        self.ingested
    }

    /// Whether the base snapshot reflects everything ingested — always true with base
    /// tracking on (the default), and true until the first update without it.
    pub fn snapshot_current(&self) -> bool {
        self.track_base || self.ingested == 0
    }

    /// The maintained base snapshot materialized as a schema-carrying [`Database`],
    /// if it is current (see [`Ring::snapshot_current`]). This is what
    /// late-registered views are backfilled from; materialization costs one tuple
    /// construction per distinct live tuple, so treat it as a bulk export, not a
    /// per-update read.
    pub fn base_snapshot(&self) -> Option<Database> {
        self.snapshot_current().then(|| {
            self.snapshot
                .to_database(&self.catalog)
                .expect("every ingested update was validated against the catalog")
        })
    }

    // ------------------------------------------------------------------
    // View lifecycle
    // ------------------------------------------------------------------

    /// Creates a standing view and returns its [`ViewId`].
    ///
    /// The definition is parsed (for [`ViewDef::Sql`] / [`ViewDef::Agca`]), validated
    /// against the catalog — a query over an undeclared relation is rejected here
    /// with [`Error::UnknownRelation`](crate::Error::UnknownRelation), not at compile
    /// time — compiled to a trigger program, and hosted on the ring's backend. If
    /// updates have already been ingested (or the ring started from a loaded
    /// database), the new view is backfilled from the base snapshot, so its result is
    /// identical to having watched the stream from the start.
    ///
    /// Names must be unique among *live* views ([`Error::DuplicateView`](crate::Error::DuplicateView)
    /// otherwise); dropping a view frees its name.
    pub fn create_view(
        &mut self,
        name: impl Into<String>,
        def: ViewDef<'_>,
    ) -> Result<ViewId, Error> {
        let backend = self.backend;
        self.create_view_hosted(name, def, move |program| boxed_engine(program, backend))
    }

    /// [`Ring::create_view`] with the view's materialized maps on an explicitly
    /// *typed* storage backend instead of the ring's configured one — any
    /// `Send + 'static` [`ViewStorage`] implementation works, including ones the
    /// [`StorageBackend`] enum cannot name (the fault-injection chaos tests host
    /// `FaultStorage`-backed views this way). [`Ring::repair_view`] rebuilds the view
    /// on the same typed backend.
    pub fn create_view_with<S: ViewStorage + Send + 'static>(
        &mut self,
        name: impl Into<String>,
        def: ViewDef<'_>,
    ) -> Result<ViewId, Error> {
        self.create_view_hosted(name, def, |program| {
            Box::new(Executor::<S>::with_backend(program))
        })
    }

    /// [`Ring::create_view`] with the engine supplied by the caller instead of the
    /// ring's backend registry — the seam the single-view facade and
    /// [`Ring::create_view_with`] use to host a *typed* `Executor<S>` for arbitrary
    /// [`ViewStorage`](crate::ViewStorage) backends. The factory is retained so
    /// [`Ring::repair_view`] can rebuild the same kind of engine.
    pub(crate) fn create_view_hosted(
        &mut self,
        name: impl Into<String>,
        def: ViewDef<'_>,
        host: impl Fn(TriggerProgram) -> Box<dyn ViewEngine> + Send + Sync + 'static,
    ) -> Result<ViewId, Error> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(Error::DuplicateView { name });
        }
        let query = match def {
            ViewDef::Sql(sql) => parse_sql(sql, &self.catalog)?,
            ViewDef::Agca(text) => parse_query(text)?,
            ViewDef::Query(query) => query,
        };
        // The Catalog = Database alias makes it easy to hand a ring one database and a
        // query written against another; surface that as a first-class error naming
        // the view and relation, before the compiler trips over it.
        for relation in query.relations() {
            if self.catalog.columns(&relation).is_none() {
                return Err(Error::UnknownRelation {
                    relation,
                    view: Some(name),
                });
            }
        }
        if !self.snapshot_current() {
            return Err(Error::BackfillUnavailable { view: name });
        }
        let factory: EngineFactory = Arc::new(host);
        let program = compile(&self.catalog, &query)?;
        // Compiler-produced programs always lower, so hosting cannot fail here.
        let mut engine = factory(program);
        if !self.snapshot.is_empty() {
            let base = self
                .snapshot
                .to_database(&self.catalog)
                .expect("every ingested update was validated against the catalog");
            engine.initialize_from(&base)?;
        }
        let slot = self.registry.register(engine);
        debug_assert_eq!(slot as usize, self.infos.len());
        self.infos.push(Some(ViewInfo {
            name: name.clone(),
            query,
            factory,
        }));
        let id = ViewId(slot);
        let registered = self.snapshots.register(ViewSnapshot::new(
            Arc::from(name.as_str()),
            0,
            self.ingested,
            Vec::new(),
        ));
        debug_assert_eq!(registered, slot);
        if self.serving() {
            // Serve the backfilled table immediately, not at the next commit.
            self.publish_slots(&[slot]);
        }
        self.names.insert(name, id);
        Ok(id)
    }

    /// Drops a view: its engine and materialized maps are discarded, its name is
    /// freed, and its id permanently invalidated (never reused). Updates ingested
    /// afterwards no longer pay for it.
    pub fn drop_view(&mut self, id: ViewId) -> Result<(), Error> {
        self.registry.remove(id.0).ok_or(Error::UnknownView {
            view: id.to_string(),
        })?;
        let info = self.infos[id.0 as usize]
            .take()
            .expect("registry slots and view infos stay in sync");
        self.names.remove(&info.name);
        // Release the published snapshot promptly: the slot stops serving now, and
        // the table's memory is freed as soon as the last reader handle drops.
        self.snapshots.evict(id.0);
        // View churn must never perturb the ingest interner: ids stay dense, stable
        // and resolvable (no dangling ids) no matter which views come and go.
        debug_assert!(self.normalizer.interner().is_consistent());
        Ok(())
    }

    /// A read handle on one view. A quarantined view refuses to serve
    /// ([`Error::ViewPoisoned`](crate::Error::ViewPoisoned)) until
    /// [`Ring::repair_view`] rebuilds it — its tables reflect a half-applied batch
    /// and cannot be trusted.
    pub fn view(&self, id: ViewId) -> Result<ViewRef<'_>, Error> {
        let engine = self.registry.engine(id.0).ok_or(Error::UnknownView {
            view: id.to_string(),
        })?;
        let info = self.infos[id.0 as usize]
            .as_ref()
            .expect("registry slots and view infos stay in sync");
        if self.registry.is_poisoned(id.0) {
            return Err(Error::ViewPoisoned {
                view: info.name.clone(),
            });
        }
        Ok(ViewRef { id, info, engine })
    }

    /// A mutable handle on one view (read everything a [`ViewRef`] can, plus
    /// counter resets). Refuses quarantined views like [`Ring::view`].
    pub fn view_mut(&mut self, id: ViewId) -> Result<ViewMut<'_>, Error> {
        if self.registry.engine(id.0).is_none() {
            return Err(Error::UnknownView {
                view: id.to_string(),
            });
        }
        let info = self.infos[id.0 as usize]
            .as_ref()
            .expect("registry slots and view infos stay in sync");
        if self.registry.is_poisoned(id.0) {
            return Err(Error::ViewPoisoned {
                view: info.name.clone(),
            });
        }
        let engine = self
            .registry
            .engine_mut(id.0)
            .expect("checked live just above");
        Ok(ViewMut { id, info, engine })
    }

    /// The id of the live view with the given name.
    pub fn view_id(&self, name: &str) -> Option<ViewId> {
        self.names.get(name).copied()
    }

    /// A read handle on the live view with the given name.
    pub fn view_named(&self, name: &str) -> Result<ViewRef<'_>, Error> {
        let id = self.view_id(name).ok_or_else(|| Error::UnknownView {
            view: name.to_string(),
        })?;
        self.view(id)
    }

    /// Read handles on every live, healthy view, in creation order. Quarantined
    /// views are skipped (enumerate them with [`Ring::poisoned_views`]).
    pub fn views(&self) -> impl Iterator<Item = ViewRef<'_>> {
        self.registry
            .engines()
            .filter(|(slot, _)| !self.registry.is_poisoned(*slot))
            .map(|(slot, engine)| ViewRef {
                id: ViewId(slot),
                info: self.infos[slot as usize]
                    .as_ref()
                    .expect("registry slots and view infos stay in sync"),
                engine,
            })
    }

    /// The ids and names of the quarantined views, in creation order — the views
    /// whose engines panicked mid-ingest and now need [`Ring::repair_view`].
    pub fn poisoned_views(&self) -> Vec<(ViewId, String)> {
        self.registry
            .poisoned_slots()
            .into_iter()
            .map(|slot| {
                let info = self.infos[slot as usize]
                    .as_ref()
                    .expect("registry slots and view infos stay in sync");
                (ViewId(slot), info.name.clone())
            })
            .collect()
    }

    /// Rebuilds one view from the base snapshot: the stored query is recompiled, a
    /// fresh engine of the same kind (same typed backend for
    /// [`Ring::create_view_with`] views) is initialized from the snapshot via the
    /// same backfill path late-created views use, and it replaces the old engine,
    /// clearing any quarantine. Because a failed batch lands *nowhere* — neither in
    /// any engine nor in the snapshot — the repaired view is exactly the view that
    /// would exist had the panic never happened.
    ///
    /// Works on healthy views too (a forced rebuild). Fails with
    /// [`Error::UnknownView`](crate::Error::UnknownView) on dropped ids and
    /// [`Error::BackfillUnavailable`](crate::Error::BackfillUnavailable) on rings
    /// built [`without_base_tracking`](RingBuilder::without_base_tracking) that have
    /// already ingested updates (there is nothing authoritative to rebuild from —
    /// drop the view instead). Work counters restart from the backfill, as with any
    /// late-created view.
    pub fn repair_view(&mut self, id: ViewId) -> Result<(), Error> {
        if self.registry.engine(id.0).is_none() {
            return Err(Error::UnknownView {
                view: id.to_string(),
            });
        }
        let info = self.infos[id.0 as usize]
            .as_ref()
            .expect("registry slots and view infos stay in sync");
        if !self.snapshot_current() {
            return Err(Error::BackfillUnavailable {
                view: info.name.clone(),
            });
        }
        let program = compile(&self.catalog, &info.query)?;
        let mut engine = (info.factory)(program);
        if !self.snapshot.is_empty() {
            let base = self
                .snapshot
                .to_database(&self.catalog)
                .expect("every ingested update was validated against the catalog");
            engine.initialize_from(&base)?;
        }
        self.registry
            .replace(id.0, engine)
            .expect("checked live just above");
        if self.serving() {
            // Republication clears the store-side quarantine flag along with the
            // registry-side one: the repaired view serves again immediately.
            self.publish_slots(&[id.0]);
        }
        // A rebuild replays from the snapshot through a fresh engine; the ring-level
        // interner is untouched, so previously returned ids stay valid.
        debug_assert!(self.normalizer.interner().is_consistent());
        Ok(())
    }

    /// Runs the static plan auditor over one view's compiled program and returns its
    /// diagnostics (empty means the plan lints clean). Shares [`Ring::view`]'s
    /// refusal of unknown and quarantined views. Auditing re-lowers the program —
    /// a cold introspection path, not a per-update one.
    pub fn audit_view(&self, id: ViewId) -> Result<Vec<Diagnostic>, Error> {
        Ok(self.view(id)?.audit())
    }

    /// Audits every live, healthy view (creation order): `(id, diagnostics)` pairs,
    /// diagnostics empty for views whose plans lint clean. The ring-wide counterpart
    /// of [`Ring::audit_view`] — what `dbring-lint` runs over each workload ring.
    pub fn audit(&self) -> Vec<(ViewId, Vec<Diagnostic>)> {
        self.views().map(|v| (v.id(), v.audit())).collect()
    }

    /// The ids of the live views reading `relation` — the routing table's answer to
    /// "who pays for an update to this relation?".
    pub fn readers_of(&self, relation: &str) -> Vec<ViewId> {
        self.registry
            .readers_of(relation)
            .iter()
            .map(|&slot| ViewId(slot))
            .collect()
    }

    // ------------------------------------------------------------------
    // Snapshot read path
    // ------------------------------------------------------------------

    /// A cloneable, `Send + Sync` read handle on this ring's published snapshots —
    /// the reader half of the writer/reader split: move the `Ring` into your ingest
    /// thread and hand [`RingHandle`] clones to any number of reader threads.
    ///
    /// The first read-side request (this method or [`Ring::snapshot`]) switches the
    /// ring into *serving* mode: every live view is published once, and from then on
    /// each successful commit — a single-tuple [`Ring::apply`] or a whole
    /// [`Ring::apply_batch`] — republishes the views it touched at that quiescent
    /// point. Rings that never serve snapshots pay one untaken branch per commit.
    pub fn reader(&self) -> RingHandle {
        self.enable_serving();
        RingHandle {
            store: Arc::clone(&self.snapshots),
        }
    }

    /// Acquires the current published snapshot of one view — O(1), independent of
    /// view size (an `Arc` clone of the table published at the last quiescent
    /// point). Same refusals as [`Ring::view`]: unknown/dropped ids are
    /// [`Error::UnknownView`](crate::Error::UnknownView), quarantined views are
    /// [`Error::ViewPoisoned`](crate::Error::ViewPoisoned) *at acquire time* — a
    /// snapshot handed out before the failure stays valid and consistent.
    ///
    /// Switches the ring into serving mode on first use (see [`Ring::reader`]), so
    /// the first call publishes every live view and is O(total output size).
    pub fn snapshot(&self, id: ViewId) -> Result<ViewSnapshot, Error> {
        self.enable_serving();
        acquire_snapshot(&self.snapshots, id.0, || id.to_string())
    }

    /// [`Ring::snapshot`] addressed by view name.
    pub fn snapshot_named(&self, name: &str) -> Result<ViewSnapshot, Error> {
        self.enable_serving();
        let slot = self
            .snapshots
            .find(name)
            .ok_or_else(|| Error::UnknownView {
                view: name.to_string(),
            })?;
        acquire_snapshot(&self.snapshots, slot, || name.to_string())
    }

    /// Whether the ring is publishing snapshots at commit points (flipped on by the
    /// first [`Ring::reader`] / [`Ring::snapshot`] call, never off).
    pub fn serving(&self) -> bool {
        self.serving.load(AtomicOrdering::Relaxed)
    }

    /// Cumulative wall-clock nanoseconds the ingest path has spent publishing
    /// snapshots — the *writer-side* cost of the read path (zero until serving
    /// starts). `exp_serve` reports this per batch as the snapshot-publish cost.
    pub fn snapshot_publish_ns(&self) -> u64 {
        self.publish_ns.load(AtomicOrdering::Relaxed)
    }

    /// Total groups currently held across all published snapshots — the publication
    /// store's memory proxy, analogous to [`StorageFootprint`] for the engine side.
    /// Dropping a view releases its contribution promptly.
    pub fn snapshot_footprint(&self) -> usize {
        self.snapshots.published_entries()
    }

    /// Switches on snapshot publication (idempotent): publishes every live view at
    /// the current quiescent point and mirrors quarantine flags into the store.
    fn enable_serving(&self) {
        if self.serving.swap(true, AtomicOrdering::Relaxed) {
            return;
        }
        let slots: Vec<u32> = (0..self.infos.len() as u32).collect();
        self.publish_slots(&slots);
        self.sync_quarantine();
    }

    /// Publishes fresh snapshots for the given slots (skipping dropped and
    /// quarantined ones) under one publication epoch, accumulating the spent time
    /// into [`Ring::snapshot_publish_ns`]. The per-slot cost is one output-table
    /// export — O(view output size) — paid by the *writer* at the commit boundary;
    /// readers never copy.
    fn publish_slots(&self, slots: &[u32]) {
        if slots.is_empty() {
            return;
        }
        let started = Instant::now();
        let epoch = self.snapshots.next_epoch();
        for &slot in slots {
            if self.registry.is_poisoned(slot) {
                continue;
            }
            let Some(engine) = self.registry.engine(slot) else {
                continue;
            };
            let Some(info) = self.infos[slot as usize].as_ref() else {
                continue;
            };
            let entries: Vec<(Vec<Value>, Number)> = engine.output_table().into_iter().collect();
            self.snapshots.publish(
                slot,
                ViewSnapshot::new(Arc::from(info.name.as_str()), epoch, self.ingested, entries),
            );
        }
        self.publish_ns
            .fetch_add(started.elapsed().as_nanos() as u64, AtomicOrdering::Relaxed);
    }

    /// Mirrors the registry's quarantine flags into the publication store, so
    /// acquisition reports [`Error::ViewPoisoned`](crate::Error::ViewPoisoned)
    /// instead of serving a stale pre-failure table as if it were current.
    fn sync_quarantine(&self) {
        for slot in self.registry.poisoned_slots() {
            self.snapshots.poison(slot);
        }
    }

    // ------------------------------------------------------------------
    // Ingest
    // ------------------------------------------------------------------

    /// Applies one single-tuple update: validated against the catalog once, routed to
    /// exactly the views whose programs read its relation, and — once every routed
    /// view accepted it — recorded in the base snapshot (when tracking). Updates to
    /// declared relations no view reads only maintain the snapshot; undeclared
    /// relations are an [`Error::UnknownRelation`](crate::Error::UnknownRelation).
    /// Zero-multiplicity updates are explicit no-ops. Quarantined views are skipped
    /// (they catch up through [`Ring::repair_view`]'s snapshot backfill).
    ///
    /// **All-or-nothing across views** (with staged ingest, the default): the catalog
    /// check vets relation and arity, and when a trigger still fails on the values
    /// themselves (e.g. a string reaching an arithmetic position) the update is
    /// rolled back from every view that already staged it — a rejected update lands
    /// *nowhere*: no view, no snapshot, no counter. A panicking view engine surfaces
    /// as [`RuntimeError::EnginePanicked`] and quarantines that view; sibling views
    /// still roll back cleanly. (With
    /// [`RingBuilder::without_staged_ingest`] a mid-fan-out failure instead leaves
    /// earlier views updated; the snapshot records only fully-applied updates either
    /// way, so a rejected update can never poison future
    /// [`create_view`](Ring::create_view) backfills.)
    pub fn apply(&mut self, update: &Update) -> Result<(), Error> {
        if update.multiplicity == 0 {
            return Ok(());
        }
        self.check_ingest(&update.relation, update.values.len())?;
        self.apply_validated(update).map_err(Error::Runtime)
    }

    /// The post-validation half of [`Ring::apply`]: engines first, snapshot and
    /// counter only on full success. When serving, a successful single-tuple apply
    /// is a quiescent point: the touched views republish before this returns.
    fn apply_validated(&mut self, update: &Update) -> Result<(), RuntimeError> {
        if let Err(error) = self.registry.apply(update) {
            self.sync_quarantine();
            return Err(error);
        }
        if self.track_base {
            self.snapshot.apply(update);
        }
        self.ingested += update.multiplicity.unsigned_abs();
        if self.serving() {
            let touched = self.registry.readers_of(&update.relation).to_vec();
            self.publish_slots(&touched);
        }
        Ok(())
    }

    /// Convenience: applies the insertion `+R(values)`.
    pub fn insert(&mut self, relation: &str, values: Vec<Value>) -> Result<(), Error> {
        self.apply(&Update::insert(relation, values))
    }

    /// Convenience: applies the deletion `−R(values)`.
    pub fn delete(&mut self, relation: &str, values: Vec<Value>) -> Result<(), Error> {
        self.apply(&Update::delete(relation, values))
    }

    /// Applies a sequence of updates one by one (one routing decision and one trigger
    /// firing per update per reading view).
    ///
    /// The whole sequence is validated against the catalog **before** anything is
    /// applied, so an undeclared relation or a wrong arity anywhere in the sequence
    /// fails with *nothing* landed. Runtime failures past that point (a trigger
    /// choking on the values themselves) stop the sequence at the failing update:
    /// every update before it is applied everywhere, the failing update itself lands
    /// nowhere (each update is all-or-nothing across views under staged ingest — see
    /// [`Ring::apply`]), and the error is wrapped in [`RuntimeError::AtUpdate`]
    /// carrying the failing index so callers know exactly how many landed.
    pub fn apply_all<'a>(
        &mut self,
        updates: impl IntoIterator<Item = &'a Update>,
    ) -> Result<(), Error> {
        let updates: Vec<&Update> = updates.into_iter().collect();
        for update in &updates {
            if update.multiplicity != 0 {
                self.check_ingest(&update.relation, update.values.len())?;
            }
        }
        for (index, update) in updates.into_iter().enumerate() {
            if update.multiplicity == 0 {
                continue;
            }
            self.apply_validated(update).map_err(|source| {
                Error::Runtime(RuntimeError::AtUpdate {
                    index,
                    source: Box::new(source),
                })
            })?;
        }
        Ok(())
    }

    /// Applies a batch of updates with **one** normalization for the whole ring: the
    /// updates are consolidated into a [`DeltaBatch`] once (cancelling pairs vanish,
    /// multiplicities net out), the snapshot is maintained in one pass per relation,
    /// and the borrowed batch is fanned out only to the views reading the touched
    /// relations. With `k` views this is the amortization [`IncrementalView`]-per-view
    /// ingest cannot have: `k` independent views each re-normalize and re-dispatch the
    /// same updates.
    ///
    /// Equivalent to [`Ring::apply_all`] over the same updates for every view
    /// (integer aggregates bit-identically; float aggregates up to IEEE reordering —
    /// see [`IncrementalView::apply_batch`](crate::IncrementalView::apply_batch)).
    ///
    /// **Failure atomicity** (with staged ingest, the default): catalog failures
    /// land nothing, and a runtime failure during fan-out also lands nothing — every
    /// touched view *stages* the batch (applying it while logging pre-images) and
    /// commits only if all of them succeed, so on error each staged view is rolled
    /// back bit-identically and the snapshot is untouched. A panicking view engine
    /// surfaces as [`RuntimeError::EnginePanicked`], quarantines that view (see
    /// [`Ring::repair_view`]), and still rolls every sibling back. Staging costs one
    /// pre-image record per map write for the duration of the batch — memory
    /// proportional to the batch's write set, not to the views. When the ring was
    /// built with [`RingBuilder::ingest_threads`] above one, touched views stage
    /// concurrently; the error contract stays deterministic regardless: if several
    /// views fail on the same batch, the failure reported is always the one from the
    /// **lowest-numbered view slot** — exactly the error sequential dispatch would
    /// have returned. With [`RingBuilder::without_staged_ingest`], sibling views may
    /// instead keep the batch on error (the pre-staging contract).
    ///
    /// [`IncrementalView`]: crate::IncrementalView
    pub fn apply_batch(&mut self, updates: &[Update]) -> Result<(), Error> {
        let batch = self.normalizer.normalize(updates);
        self.apply_delta_batch(&batch)
    }

    /// The string interner accumulated by the batch ingest path. Ids are dense,
    /// first-seen and stable for the ring's lifetime — dropping or repairing views
    /// never invalidates an id, so readers may cache them.
    pub fn interner(&self) -> &Interner {
        self.normalizer.interner()
    }

    /// Crate-internal: normalizes a batch through the ring's reusable interned
    /// scratch (shared with [`IncrementalView`](crate::IncrementalView)'s batch path).
    pub(crate) fn normalize_updates<'a>(&mut self, updates: &'a [Update]) -> DeltaBatch<'a> {
        self.normalizer.normalize(updates)
    }

    /// Applies an already-normalized delta batch (the normalization cost of
    /// [`Ring::apply_batch`] can then be reused or amortized by the caller).
    ///
    /// Shares [`Ring::apply_batch`]'s failure contract: on a runtime error the batch
    /// has landed nowhere — every staged view rolled back, snapshot untouched — and
    /// under parallel dispatch the reported error is the lowest-slot failure.
    pub fn apply_delta_batch(&mut self, batch: &DeltaBatch<'_>) -> Result<(), Error> {
        for group in batch.groups() {
            let expected = match self.catalog.columns(group.relation()) {
                Some(columns) => columns.len(),
                None => {
                    return Err(Error::UnknownRelation {
                        relation: group.relation().to_string(),
                        view: None,
                    })
                }
            };
            for (values, _) in group.deltas() {
                if values.len() != expected {
                    return Err(Error::Runtime(RuntimeError::ArityMismatch {
                        relation: group.relation().to_string(),
                        expected,
                        got: values.len(),
                    }));
                }
            }
        }
        // Engines first, snapshot only on full success: a rejected batch must never
        // enter the backfill source (see `Ring::apply`).
        if let Err(error) = self.registry.apply_batch(batch) {
            self.sync_quarantine();
            return Err(error.into());
        }
        if self.track_base {
            self.snapshot.apply_delta_batch(batch);
        }
        self.ingested += batch.total_weight();
        if self.serving() {
            // The batch committed everywhere — a quiescent point. Republish exactly
            // the views that read a touched relation; snapshots of the others are
            // still current by construction.
            let mut touched: Vec<u32> = Vec::new();
            for group in batch.groups() {
                touched.extend_from_slice(self.registry.readers_of(group.relation()));
            }
            touched.sort_unstable();
            touched.dedup();
            self.publish_slots(&touched);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Crate-internal hooks for the single-view `IncrementalView` wrapper
    // ------------------------------------------------------------------

    /// Validates an ingest target against the catalog: the relation must be declared
    /// and the arity must match.
    fn check_ingest(&self, relation: &str, arity: usize) -> Result<(), Error> {
        match self.catalog.columns(relation) {
            None => Err(Error::UnknownRelation {
                relation: relation.to_string(),
                view: None,
            }),
            Some(columns) if columns.len() != arity => {
                Err(Error::Runtime(RuntimeError::ArityMismatch {
                    relation: relation.to_string(),
                    expected: columns.len(),
                    got: arity,
                }))
            }
            Some(_) => Ok(()),
        }
    }

    /// Re-initializes one view's maps from an explicit database (the facade's
    /// `with_initial_database`). Any state the view accumulated is replaced.
    pub(crate) fn reinitialize_view_from(
        &mut self,
        id: ViewId,
        db: &Database,
    ) -> Result<(), Error> {
        let engine = self.registry.engine_mut(id.0).ok_or(Error::UnknownView {
            view: id.to_string(),
        })?;
        engine.initialize_from(db)?;
        if self.serving() {
            self.publish_slots(&[id.0]);
        }
        Ok(())
    }

    /// The maintained query of a live view (panics on a dropped/unknown id — the
    /// facade guarantees its single view is never dropped).
    pub(crate) fn query_unchecked(&self, id: ViewId) -> &Query {
        &self.infos[id.0 as usize]
            .as_ref()
            .expect("the facade's single view is never dropped")
            .query
    }

    /// The hosted engine of a live view (panics on a dropped/unknown id — the facade
    /// guarantees its single view is never dropped).
    pub(crate) fn engine_unchecked(&self, id: ViewId) -> &dyn ViewEngine {
        self.registry
            .engine(id.0)
            .expect("the facade's single view is never dropped")
    }

    /// Mutable counterpart of [`Ring::engine_unchecked`].
    pub(crate) fn engine_unchecked_mut(&mut self, id: ViewId) -> &mut Box<dyn ViewEngine> {
        self.registry
            .engine_mut(id.0)
            .expect("the facade's single view is never dropped")
    }
}

/// Shared read surface of [`ViewRef`] and [`ViewMut`].
macro_rules! view_read_api {
    () => {
        /// The view's id within its ring.
        pub fn id(&self) -> ViewId {
            self.id
        }

        /// The view's name.
        pub fn name(&self) -> &str {
            &self.info.name
        }

        /// The query this view maintains.
        pub fn query(&self) -> &Query {
            &self.info.query
        }

        /// The compiled trigger program (inspect with
        /// [`TriggerProgram::describe`]).
        pub fn program(&self) -> &TriggerProgram {
            self.engine.program()
        }

        /// The program rendered in the paper's low-level NC0C language.
        pub fn nc0c_source(&self) -> String {
            generate_nc0c(self.engine.program())
        }

        /// The engine's registry name (executor family `@` backend).
        pub fn engine_name(&self) -> &'static str {
            self.engine.engine_name()
        }

        /// The aggregate value for one group key (the empty slice for queries without
        /// `GROUP BY`). Missing groups read as zero.
        pub fn value(&self, group_key: &[Value]) -> Number {
            self.engine.output_value(group_key)
        }

        /// The full result table, sorted by group key.
        pub fn table(&self) -> BTreeMap<Vec<Value>, Number> {
            self.engine.output_table()
        }

        /// Work counters (updates applied, ring additions/multiplications performed)
        /// for this view alone.
        pub fn stats(&self) -> ExecStats {
            self.engine.stats()
        }

        /// Total number of entries across this view's whole map hierarchy.
        pub fn total_entries(&self) -> usize {
            self.engine.total_entries()
        }

        /// The storage-level memory proxy of this view's hierarchy: entry and
        /// secondary-index-entry counts (comparable across storage backends).
        pub fn storage_footprint(&self) -> StorageFootprint {
            self.engine.storage_footprint()
        }

        /// The static plan auditor's diagnostics for this view's compiled program
        /// (empty means clean). See [`Ring::audit_view`].
        pub fn audit(&self) -> Vec<Diagnostic> {
            self.engine.audit()
        }
    };
}

/// A cheap read handle on one standing view of a [`Ring`] — everything a caller can
/// ask of a view without being able to mutate it.
#[derive(Clone, Copy)]
pub struct ViewRef<'a> {
    id: ViewId,
    info: &'a ViewInfo,
    engine: &'a dyn ViewEngine,
}

impl ViewRef<'_> {
    view_read_api!();
}

impl fmt::Debug for ViewRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ViewRef")
            .field("id", &self.id)
            .field("name", &self.info.name)
            .field("engine", &self.engine.engine_name())
            .finish()
    }
}

/// A mutable handle on one standing view: the full [`ViewRef`] read surface plus
/// counter resets. Ingest stays on the ring — that is the point of the design — so
/// even a mutable handle cannot apply updates to a single view.
pub struct ViewMut<'a> {
    id: ViewId,
    info: &'a ViewInfo,
    engine: &'a mut Box<dyn ViewEngine>,
}

impl ViewMut<'_> {
    view_read_api!();

    /// Resets this view's work counters (e.g. after a bulk load, before a measured
    /// stream).
    pub fn reset_stats(&mut self) {
        self.engine.reset_stats();
    }
}

impl fmt::Debug for ViewMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ViewMut")
            .field("id", &self.id)
            .field("name", &self.info.name)
            .field("engine", &self.engine.engine_name())
            .finish()
    }
}

/// Maps a publication-store acquisition to the ring's error vocabulary.
fn acquire_snapshot(
    store: &SnapshotStore,
    slot: u32,
    who: impl FnOnce() -> String,
) -> Result<ViewSnapshot, Error> {
    match store.acquire(slot) {
        SnapshotAccess::Published(snapshot) => Ok(snapshot),
        SnapshotAccess::Poisoned(name) => Err(Error::ViewPoisoned {
            view: name.to_string(),
        }),
        SnapshotAccess::Dropped | SnapshotAccess::Unknown => {
            Err(Error::UnknownView { view: who() })
        }
    }
}

/// The reader half of a [`Ring`]: a cheap, cloneable, `Send + Sync` handle on the
/// ring's published snapshots, detached from the ring's borrow.
///
/// Obtained from [`Ring::reader`]. The intended split is one ingest thread owning
/// the `&mut Ring` and any number of reader threads holding `RingHandle` clones:
/// reads acquire O(1) point-in-time [`ViewSnapshot`]s published at batch-commit
/// quiescent points, and never contend with the writer beyond a pointer-sized
/// critical section at acquire.
///
/// A handle observes the ring's view lifecycle as of each acquisition: snapshots of
/// views created later are visible once published, dropped views report
/// [`Error::UnknownView`](crate::Error::UnknownView), and quarantined views report
/// [`Error::ViewPoisoned`](crate::Error::ViewPoisoned) at acquire time (snapshots
/// acquired *before* the failure stay readable — they are immutable data).
///
/// ```
/// use dbring::{Catalog, RingBuilder, Update, Value, ViewDef};
///
/// let mut catalog = Catalog::new();
/// catalog.declare("Sales", &["cust", "cents"]).unwrap();
/// let mut ring = RingBuilder::new(catalog).build();
/// let revenue = ring
///     .create_view(
///         "revenue",
///         ViewDef::Sql("SELECT cust, SUM(cents) AS revenue FROM Sales GROUP BY cust"),
///     )
///     .unwrap();
///
/// let reader = ring.reader();
/// let writer = std::thread::spawn(move || {
///     ring.apply_batch(&[Update::insert("Sales", vec![Value::int(1), Value::int(500)])])
///         .unwrap();
///     ring
/// });
/// // Reader threads acquire consistent snapshots while the writer ingests.
/// let snapshot = reader.snapshot(revenue).unwrap();
/// assert!(snapshot.value(&[Value::int(1)]).as_f64() <= 500.0);
/// let ring = writer.join().unwrap();
/// assert_eq!(ring.snapshot(revenue).unwrap().value(&[Value::int(1)]).as_f64(), 500.0);
/// ```
#[derive(Clone, Debug)]
pub struct RingHandle {
    store: Arc<SnapshotStore>,
}

impl RingHandle {
    /// Acquires the current published snapshot of one view — O(1): an `Arc` clone
    /// under a pointer-sized critical section, never a table copy.
    pub fn snapshot(&self, id: ViewId) -> Result<ViewSnapshot, Error> {
        acquire_snapshot(&self.store, id.0, || id.to_string())
    }

    /// [`RingHandle::snapshot`] addressed by view name.
    pub fn snapshot_named(&self, name: &str) -> Result<ViewSnapshot, Error> {
        let slot = self.store.find(name).ok_or_else(|| Error::UnknownView {
            view: name.to_string(),
        })?;
        acquire_snapshot(&self.store, slot, || name.to_string())
    }

    /// The id of the live (published or quarantined) view with the given name, as
    /// of this call.
    pub fn view_id(&self, name: &str) -> Option<ViewId> {
        self.store.find(name).map(ViewId)
    }

    /// Total groups currently held across all published snapshots (see
    /// [`Ring::snapshot_footprint`]).
    pub fn snapshot_footprint(&self) -> usize {
        self.store.published_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;

    fn sales_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("Sales", &["cust", "cents", "qty"]).unwrap();
        c.declare("Returns", &["cust", "cents"]).unwrap();
        c
    }

    fn sale(cust: i64, cents: i64, qty: i64) -> Update {
        Update::insert(
            "Sales",
            vec![Value::int(cust), Value::int(cents), Value::int(qty)],
        )
    }

    #[test]
    fn one_stream_maintains_many_views() {
        let mut ring = RingBuilder::new(sales_catalog()).build();
        let revenue = ring
            .create_view(
                "revenue",
                ViewDef::Sql("SELECT cust, SUM(cents * qty) AS r FROM Sales GROUP BY cust"),
            )
            .unwrap();
        let orders = ring
            .create_view(
                "orders",
                ViewDef::Sql("SELECT cust, SUM(1) AS n FROM Sales GROUP BY cust"),
            )
            .unwrap();
        let refunds = ring
            .create_view(
                "refunds",
                ViewDef::Sql("SELECT cust, SUM(cents) AS c FROM Returns GROUP BY cust"),
            )
            .unwrap();
        assert_eq!(ring.len(), 3);
        ring.apply_all(&[sale(1, 100, 2), sale(1, 50, 1), sale(2, 30, 3)])
            .unwrap();
        ring.insert("Returns", vec![Value::int(1), Value::int(40)])
            .unwrap();
        assert_eq!(
            ring.view(revenue).unwrap().value(&[Value::int(1)]),
            Number::Int(250)
        );
        assert_eq!(
            ring.view(orders).unwrap().value(&[Value::int(1)]),
            Number::Int(2)
        );
        assert_eq!(
            ring.view(refunds).unwrap().value(&[Value::int(1)]),
            Number::Int(40)
        );
        // Routing: the Returns insert did not touch the Sales-reading views.
        assert_eq!(ring.view(revenue).unwrap().stats().updates, 3);
        assert_eq!(ring.view(refunds).unwrap().stats().updates, 1);
        assert_eq!(ring.readers_of("Sales"), vec![revenue, orders]);
        assert_eq!(ring.readers_of("Returns"), vec![refunds]);
        assert_eq!(ring.updates_ingested(), 4);
        assert_eq!(
            ring.views()
                .map(|v| v.name().to_string())
                .collect::<Vec<_>>(),
            vec!["revenue", "orders", "refunds"]
        );
    }

    #[test]
    fn late_registration_backfills_from_the_snapshot() {
        let mut ring = RingBuilder::new(sales_catalog()).build();
        let early = ring
            .create_view(
                "early",
                ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
            )
            .unwrap();
        ring.apply_all(&[sale(1, 10, 1), sale(2, 20, 2), sale(1, 5, 4)])
            .unwrap();
        // Same definition, created after the stream: must match the early view.
        let late = ring
            .create_view("late", ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"))
            .unwrap();
        assert_eq!(
            ring.view(early).unwrap().table(),
            ring.view(late).unwrap().table()
        );
        // And both keep agreeing on further maintenance.
        ring.apply(&sale(2, 7, 1)).unwrap();
        assert_eq!(
            ring.view(early).unwrap().table(),
            ring.view(late).unwrap().table()
        );
        assert_eq!(
            ring.view(late).unwrap().value(&[Value::int(2)]),
            Number::Int(47)
        );
    }

    #[test]
    fn from_database_backfills_new_views() {
        let mut db = sales_catalog();
        db.apply_all(&[sale(1, 100, 1), sale(1, 10, 2)]).unwrap();
        let mut ring = RingBuilder::from_database(db).build();
        let v = ring
            .create_view(
                "revenue",
                ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
            )
            .unwrap();
        assert_eq!(
            ring.view(v).unwrap().value(&[Value::int(1)]),
            Number::Int(120)
        );
        ring.apply(&sale(1, 1, 5)).unwrap();
        assert_eq!(
            ring.view(v).unwrap().value(&[Value::int(1)]),
            Number::Int(125)
        );
    }

    #[test]
    fn create_view_rejects_undeclared_relations_with_a_dedicated_error() {
        let mut ring = RingBuilder::new(sales_catalog()).build();
        let err = ring
            .create_view("bad", ViewDef::Agca("q := Sum(Ghost(x))"))
            .unwrap_err();
        match &err {
            Error::UnknownRelation { relation, view } => {
                assert_eq!(relation, "Ghost");
                assert_eq!(view.as_deref(), Some("bad"));
            }
            other => panic!("expected UnknownRelation, got {other:?}"),
        }
        assert!(err.to_string().contains("Ghost"));
        assert!(err.to_string().contains("bad"));
        assert!(ring.is_empty(), "the failed view was not registered");
    }

    #[test]
    fn duplicate_and_unknown_view_errors() {
        let mut ring = RingBuilder::new(sales_catalog()).build();
        let id = ring
            .create_view("v", ViewDef::Agca("q := Sum(Sales(c, p, n))"))
            .unwrap();
        assert!(matches!(
            ring.create_view("v", ViewDef::Agca("q := Sum(Sales(c, p, n))")),
            Err(Error::DuplicateView { .. })
        ));
        ring.drop_view(id).unwrap();
        assert!(matches!(ring.drop_view(id), Err(Error::UnknownView { .. })));
        assert!(matches!(ring.view(id), Err(Error::UnknownView { .. })));
        assert!(ring.view_id("v").is_none());
        // The name is freed, and the old id is never reused.
        let id2 = ring
            .create_view("v", ViewDef::Agca("q := Sum(Sales(c, p, n))"))
            .unwrap();
        assert_ne!(id, id2);
        assert!(matches!(
            ring.view_named("ghost"),
            Err(Error::UnknownView { .. })
        ));
        assert_eq!(ring.view_named("v").unwrap().id(), id2);
    }

    #[test]
    fn dropped_views_stop_paying_for_ingest() {
        let mut ring = RingBuilder::new(sales_catalog()).build();
        let keep = ring
            .create_view("keep", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
            .unwrap();
        let gone = ring
            .create_view("gone", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
            .unwrap();
        ring.apply(&sale(1, 1, 1)).unwrap();
        ring.drop_view(gone).unwrap();
        ring.apply(&sale(2, 2, 2)).unwrap();
        assert_eq!(ring.view(keep).unwrap().stats().updates, 2);
        assert_eq!(ring.readers_of("Sales"), vec![keep]);
    }

    #[test]
    fn ingest_validates_against_the_catalog() {
        let mut ring = RingBuilder::new(sales_catalog()).build();
        ring.create_view("v", ViewDef::Agca("q := Sum(Sales(c, p, n))"))
            .unwrap();
        assert!(matches!(
            ring.insert("Ghost", vec![Value::int(1)]),
            Err(Error::UnknownRelation { view: None, .. })
        ));
        assert!(matches!(
            ring.insert("Sales", vec![Value::int(1)]),
            Err(Error::Runtime(RuntimeError::ArityMismatch { .. }))
        ));
        // A declared relation no view reads is maintained in the snapshot only.
        ring.insert("Returns", vec![Value::int(1), Value::int(5)])
            .unwrap();
        assert_eq!(ring.updates_ingested(), 1);
        assert_eq!(ring.base_snapshot().unwrap().total_support(), 1);
        // Batch ingest validates the same way.
        assert!(matches!(
            ring.apply_batch(&[Update::insert("Ghost", vec![Value::int(1)])]),
            Err(Error::UnknownRelation { .. })
        ));
        assert!(matches!(
            ring.apply_batch(&[Update::insert("Sales", vec![Value::int(1)])]),
            Err(Error::Runtime(RuntimeError::ArityMismatch { .. }))
        ));
        // apply_all prevalidates the whole sequence: a catalog error anywhere means
        // *nothing* lands, reported without an index.
        let before = ring.updates_ingested();
        let err = ring
            .apply_all(&[sale(1, 1, 1), Update::insert("Sales", vec![Value::int(9)])])
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Runtime(RuntimeError::ArityMismatch { .. })
        ));
        assert_eq!(ring.updates_ingested(), before, "nothing landed");
    }

    /// Regression (review finding): a trigger failing on the *values* (which the
    /// catalog check cannot vet) must not poison the base snapshot — late view
    /// creation has to keep working after a rejected update, and `apply_all` must
    /// pinpoint the failing index for such runtime errors.
    #[test]
    fn rejected_updates_never_enter_the_backfill_snapshot() {
        let mut ring = RingBuilder::new(sales_catalog()).build();
        ring.create_view(
            "revenue",
            ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
        )
        .unwrap();
        // Catalog-valid (right relation, right arity) but a string lands in an
        // arithmetic position: the trigger rejects it at runtime.
        let poison = Update::insert(
            "Sales",
            vec![Value::int(1), Value::str("x"), Value::str("y")],
        );
        let err = ring
            .apply_all(&[sale(1, 10, 1), poison.clone(), sale(2, 5, 1)])
            .unwrap_err();
        match err {
            Error::Runtime(RuntimeError::AtUpdate { index, .. }) => assert_eq!(index, 1),
            other => panic!("expected AtUpdate, got {other:?}"),
        }
        // The good update before the failure landed; the poison did not reach the
        // snapshot, so mid-stream view creation still works and matches the stream.
        assert_eq!(ring.updates_ingested(), 1);
        assert!(ring.apply(&poison).is_err());
        let late = ring
            .create_view("units", ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * n)"))
            .unwrap();
        assert_eq!(
            ring.view(late).unwrap().value(&[Value::int(1)]),
            Number::Int(1)
        );
        assert_eq!(ring.base_snapshot().unwrap().total_support(), 1);
        // The batch path keeps the same guarantee.
        let err = ring.apply_batch(&[sale(3, 2, 2), poison]).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
        assert!(ring
            .create_view("orders", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
            .is_ok());
    }

    #[test]
    fn batch_ingest_normalizes_once_and_matches_per_update_ingest() {
        let updates: Vec<Update> = (0..40)
            .map(|i| sale(i % 5, 100 * (i % 3 + 1), i % 4 + 1))
            .chain((0..6).map(|i| sale(i % 5, 100, 1).inverse()))
            .collect();
        let defs = [
            ("revenue", "q[c] := Sum(Sales(c, p, n) * p * n)"),
            ("orders", "q[c] := Sum(Sales(c, p, n))"),
        ];
        let mut per_update = RingBuilder::new(sales_catalog()).build();
        let mut batched = RingBuilder::new(sales_catalog()).build();
        for (name, text) in defs {
            per_update.create_view(name, ViewDef::Agca(text)).unwrap();
            batched.create_view(name, ViewDef::Agca(text)).unwrap();
        }
        per_update.apply_all(&updates).unwrap();
        for chunk in updates.chunks(16) {
            batched.apply_batch(chunk).unwrap();
        }
        for (name, _) in defs {
            assert_eq!(
                per_update.view_named(name).unwrap().table(),
                batched.view_named(name).unwrap().table(),
                "{name}"
            );
        }
        // The batch path counts *consolidated* weight: in-batch cancelling pairs
        // vanish before ingestion, so it can only see fewer updates, never more.
        assert!(batched.updates_ingested() <= per_update.updates_ingested());
        assert!(batched.updates_ingested() > 0);
        // The snapshots agree too (batch snapshot maintenance is one pass).
        assert_eq!(
            per_update.base_snapshot().unwrap().total_support(),
            batched.base_snapshot().unwrap().total_support()
        );
    }

    #[test]
    fn parallel_ingest_matches_sequential_ingest_exactly() {
        let updates: Vec<Update> = (0..60)
            .map(|i| sale(i % 7, 10 * (i % 4 + 1), i % 3 + 1))
            .chain((0..9).map(|i| sale(i % 7, 10, 1).inverse()))
            .collect();
        let defs = [
            ("revenue", "q[c] := Sum(Sales(c, p, n) * p * n)"),
            ("orders", "q[c] := Sum(Sales(c, p, n))"),
            ("units", "q[c] := Sum(Sales(c, p, n) * n)"),
            ("total", "q := Sum(Sales(c, p, n) * p * n)"),
        ];
        let mut sequential = RingBuilder::new(sales_catalog()).ingest_threads(1).build();
        let mut parallel = RingBuilder::new(sales_catalog()).ingest_threads(4).build();
        assert_eq!(sequential.ingest_threads(), 1);
        assert_eq!(parallel.ingest_threads(), 4);
        for (name, text) in defs {
            sequential.create_view(name, ViewDef::Agca(text)).unwrap();
            parallel.create_view(name, ViewDef::Agca(text)).unwrap();
        }
        for chunk in updates.chunks(20) {
            sequential.apply_batch(chunk).unwrap();
            parallel.apply_batch(chunk).unwrap();
        }
        for (name, _) in defs {
            let seq = sequential.view_named(name).unwrap();
            let par = parallel.view_named(name).unwrap();
            assert_eq!(seq.table(), par.table(), "{name}: tables diverged");
            assert_eq!(seq.stats(), par.stats(), "{name}: stats diverged");
        }
    }

    #[test]
    fn disabling_base_tracking_blocks_late_registration_only() {
        let mut ring = RingBuilder::new(sales_catalog())
            .without_base_tracking()
            .build();
        let early = ring
            .create_view("early", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
            .unwrap();
        assert!(ring.snapshot_current(), "no updates yet");
        ring.apply(&sale(1, 1, 1)).unwrap();
        assert!(!ring.snapshot_current());
        assert!(ring.base_snapshot().is_none());
        let err = ring
            .create_view("late", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
            .unwrap_err();
        assert!(matches!(err, Error::BackfillUnavailable { .. }));
        assert!(err.to_string().contains("late"));
        // The early view is unaffected.
        assert_eq!(
            ring.view(early).unwrap().value(&[Value::int(1)]),
            Number::Int(1)
        );
    }

    /// The full quarantine lifecycle at ring level: a panicking engine poisons its
    /// view, reads refuse it, ingest skips it while siblings keep serving, and
    /// `repair_view` rebuilds it from the snapshot to exactly the state a replay
    /// from scratch would produce.
    #[test]
    fn panicked_views_are_quarantined_skipped_and_repaired_from_the_snapshot() {
        use dbring_runtime::fault::{with_fault, FaultOp, FaultPlan, FaultStorage};
        use dbring_runtime::HashViewStorage;

        let mut ring = RingBuilder::new(sales_catalog()).build();
        let healthy = ring
            .create_view("healthy", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
            .unwrap();
        let victim = ring
            .create_view_with::<FaultStorage<HashViewStorage>>(
                "victim",
                ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
            )
            .unwrap();
        ring.apply_batch(&[sale(1, 10, 1), sale(2, 20, 2)]).unwrap();
        let healthy_before = ring.view(healthy).unwrap().table();
        let ingested_before = ring.updates_ingested();

        let failed_batch = [sale(1, 5, 1), sale(3, 7, 2)];
        let err = with_fault(FaultPlan::new(FaultOp::ApplySorted, 0), || {
            ring.apply_batch(&failed_batch).unwrap_err()
        });
        match &err {
            Error::Runtime(RuntimeError::EnginePanicked { slot }) => assert_eq!(*slot, victim.0),
            other => panic!("expected EnginePanicked, got {other:?}"),
        }
        // The failed batch landed nowhere: healthy view, snapshot and counter are
        // exactly the pre-batch state.
        assert_eq!(ring.view(healthy).unwrap().table(), healthy_before);
        assert_eq!(ring.updates_ingested(), ingested_before);

        // The victim is quarantined: reads refuse it, enumeration skips it.
        let read_err = ring.view(victim).unwrap_err();
        assert!(matches!(&read_err, Error::ViewPoisoned { view } if view == "victim"));
        assert!(read_err.to_string().contains("quarantined"));
        assert!(matches!(
            ring.view_mut(victim),
            Err(Error::ViewPoisoned { .. })
        ));
        assert_eq!(
            ring.views().map(|v| v.id()).collect::<Vec<_>>(),
            vec![healthy]
        );
        assert_eq!(ring.poisoned_views(), vec![(victim, "victim".to_string())]);

        // Ingest keeps flowing to the healthy view and the snapshot; the victim is
        // skipped on both the batch and the per-update path.
        ring.apply_batch(&[sale(1, 5, 1)]).unwrap();
        ring.apply(&sale(2, 3, 1)).unwrap();
        assert_eq!(
            ring.view(healthy).unwrap().value(&[Value::int(1)]),
            Number::Int(2)
        );

        // Repair rebuilds from the snapshot; the result is exactly a from-scratch
        // replay of everything that ever landed.
        ring.repair_view(victim).unwrap();
        assert!(ring.poisoned_views().is_empty());
        let mut replay = RingBuilder::new(sales_catalog()).build();
        let replay_victim = replay
            .create_view(
                "victim",
                ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
            )
            .unwrap();
        replay
            .apply_all(&[sale(1, 10, 1), sale(2, 20, 2), sale(1, 5, 1), sale(2, 3, 1)])
            .unwrap();
        assert_eq!(
            ring.view(victim).unwrap().table(),
            replay.view(replay_victim).unwrap().table()
        );
        // The repaired view is live again: further updates maintain it.
        ring.apply(&sale(1, 2, 1)).unwrap();
        replay.apply(&sale(1, 2, 1)).unwrap();
        assert_eq!(
            ring.view(victim).unwrap().table(),
            replay.view(replay_victim).unwrap().table()
        );
    }

    #[test]
    fn repair_needs_a_current_snapshot_and_a_live_view() {
        let mut ring = RingBuilder::new(sales_catalog())
            .without_base_tracking()
            .build();
        let v = ring
            .create_view("v", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
            .unwrap();
        // Before any ingest the (empty) snapshot is current: repair is a no-op rebuild.
        ring.repair_view(v).unwrap();
        ring.apply(&sale(1, 1, 1)).unwrap();
        let err = ring.repair_view(v).unwrap_err();
        assert!(matches!(err, Error::BackfillUnavailable { .. }));
        let mut tracked = RingBuilder::new(sales_catalog()).build();
        let dropped = tracked
            .create_view("v", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
            .unwrap();
        tracked.drop_view(dropped).unwrap();
        assert!(matches!(
            tracked.repair_view(dropped),
            Err(Error::UnknownView { .. })
        ));
    }

    /// The builder's staging knob: staged ingest (default) makes a failed update
    /// land nowhere; `without_staged_ingest` restores the pre-staging contract where
    /// lower-slot siblings keep their writes.
    #[test]
    fn the_staging_knob_selects_between_atomic_and_direct_ingest() {
        // Catalog-valid but the revenue view chokes on the string in an arithmetic
        // position; the counting view accepts the same tuple.
        let poison = Update::insert(
            "Sales",
            vec![Value::int(1), Value::str("x"), Value::str("y")],
        );
        let build = |staged: bool| {
            let builder = RingBuilder::new(sales_catalog()).ingest_threads(1);
            let builder = if staged {
                builder
            } else {
                builder.without_staged_ingest()
            };
            let mut ring = builder.build();
            let orders = ring
                .create_view("orders", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
                .unwrap();
            ring.create_view(
                "revenue",
                ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
            )
            .unwrap();
            (ring, orders)
        };
        let (mut staged, orders) = build(true);
        assert!(staged.staged_ingest());
        staged
            .apply_batch(std::slice::from_ref(&poison))
            .unwrap_err();
        assert!(staged.view(orders).unwrap().table().is_empty(), "atomic");
        assert_eq!(staged.view(orders).unwrap().stats().updates, 0);

        let (mut direct, orders) = build(false);
        assert!(!direct.staged_ingest());
        direct.apply_batch(&[poison]).unwrap_err();
        assert_eq!(
            direct.view(orders).unwrap().table().len(),
            1,
            "direct mode lets the lower slot keep the batch"
        );
    }

    #[test]
    fn every_hosted_plan_audits_clean_of_errors() {
        let mut ring = RingBuilder::new(sales_catalog()).build();
        let revenue = ring
            .create_view(
                "revenue",
                ViewDef::Sql("SELECT cust, SUM(cents * qty) AS r FROM Sales GROUP BY cust"),
            )
            .unwrap();
        ring.create_view(
            "pairs",
            ViewDef::Agca("q := Sum(Sales(c, p, n) * Sales(c2, p2, n2))"),
        )
        .unwrap();
        let audits = ring.audit();
        assert_eq!(audits.len(), 2);
        for (id, diags) in &audits {
            assert!(
                !diags
                    .iter()
                    .any(|d| d.severity == dbring_compiler::Severity::Error),
                "{id}: {diags:?}"
            );
            assert_eq!(&ring.audit_view(*id).unwrap(), diags);
        }
        assert_eq!(
            ring.view(revenue).unwrap().audit(),
            ring.audit_view(revenue).unwrap()
        );
        ring.drop_view(revenue).unwrap();
        assert!(matches!(
            ring.audit_view(revenue),
            Err(Error::UnknownView { .. })
        ));
        assert_eq!(ring.audit().len(), 1);
    }

    #[test]
    fn view_handles_expose_program_and_metadata() {
        let mut ring = RingBuilder::new(sales_catalog())
            .backend(StorageBackend::Ordered)
            .build();
        let id = ring
            .create_view(
                "revenue",
                ViewDef::Sql("SELECT cust, SUM(cents * qty) AS r FROM Sales GROUP BY cust"),
            )
            .unwrap();
        ring.apply(&sale(3, 10, 2)).unwrap();
        let view = ring.view(id).unwrap();
        assert_eq!(view.id(), id);
        assert_eq!(view.name(), "revenue");
        assert_eq!(view.engine_name(), "recursive-ivm@ordered");
        assert_eq!(view.query().group_by.len(), 1);
        assert!(view.program().describe().contains("on +Sales"));
        assert!(view.nc0c_source().contains("void on_insert_Sales"));
        assert!(view.total_entries() > 0);
        assert!(view.storage_footprint().entries > 0);
        assert_eq!(format!("{}", view.id()), format!("view#{}", id.0));
        assert!(format!("{view:?}").contains("revenue"));
        let mut view = ring.view_mut(id).unwrap();
        assert_eq!(view.name(), "revenue");
        view.reset_stats();
        assert!(format!("{view:?}").contains("revenue"));
        assert_eq!(ring.view(id).unwrap().stats().updates, 0);
        assert_eq!(ring.backend(), StorageBackend::Ordered);
    }
}
