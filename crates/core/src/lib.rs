//! # dbring — incremental query evaluation in a ring of databases
//!
//! A from-scratch Rust reproduction of Christoph Koch's *Incremental Query Evaluation in a
//! Ring of Databases* (PODS 2010): the ring of generalized multiset relations, the AGCA
//! aggregate query calculus, recursive delta processing, and a compiler that turns
//! aggregate queries into trigger programs which maintain the query result with a
//! **constant number of arithmetic operations per maintained value per single-tuple
//! update** — no joins, no aggregation operators, no access to the base relations.
//!
//! ## Quick start
//!
//! ```
//! use dbring::{Catalog, IncrementalView, Value};
//!
//! // Declare the schema.
//! let mut catalog = Catalog::new();
//! catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
//!
//! // Define a standing aggregate query (SQL subset or AGCA text syntax).
//! let mut revenue = IncrementalView::from_sql(
//!     &catalog,
//!     "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
//! )
//! .unwrap();
//!
//! // Stream updates; the view stays fresh after every single-tuple change.
//! revenue.insert("Sales", vec![Value::int(1), Value::float(9.5), Value::int(3)]).unwrap();
//! revenue.insert("Sales", vec![Value::int(1), Value::float(0.5), Value::int(1)]).unwrap();
//! revenue.delete("Sales", vec![Value::int(1), Value::float(0.5), Value::int(1)]).unwrap();
//! assert_eq!(revenue.value(&[Value::int(1)]).as_f64(), 28.5);
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | paper section |
//! |---|---|---|
//! | abstract algebra (monoid/avalanche rings, polynomials, recursive memoization) | `dbring-algebra` | §1.1, §2 |
//! | generalized multiset relations, databases, updates | `dbring-relations` | §3 |
//! | the AGCA calculus: AST, parsers, evaluator, normalization, factorization | `dbring-agca` | §4–5 |
//! | the delta transform and delta hierarchies | `dbring-delta` | §6 |
//! | the NC0C trigger IR and the recursive IVM compiler | `dbring-compiler` | §7 |
//! | the trigger executor, op counting, baselines | `dbring-runtime` | §1.1, §7 |
//!
//! This facade re-exports the pieces most users need and adds [`IncrementalView`], a
//! one-stop API that parses, checks, compiles and runs a standing query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use dbring_agca::ast::{CmpOp, Expr, Query};
pub use dbring_agca::eval::{eval, eval_all_groups, EvalError};
pub use dbring_agca::parser::{parse_expr, parse_query, ParseError};
pub use dbring_agca::safety::SafetyError;
pub use dbring_agca::sql::parse_sql;
pub use dbring_algebra::{Number, Polynomial, RecursiveMemo, Ring, Semiring};
pub use dbring_compiler::{
    compile, generate_nc0c, lower, CompileError, ExecPlan, LowerError, PlanOp, PlanStatement,
    PlanTrigger, Slot, SlotExpr, TriggerProgram, UnboundKey,
};
pub use dbring_delta::{delta, Sign, UpdateEvent};
pub use dbring_relations::{Database, DeltaBatch, DeltaGroup, Gmr, Tuple, Update, Value};
pub use dbring_runtime::{
    interpreted_ivm, recursive_ivm, strategy_by_name, ClassicalIvm, ExecStats, Executor,
    HashViewStorage, InterpretedExecutor, MaintenanceStrategy, NaiveReeval, OrderedViewStorage,
    RuntimeError, StorageBackend, StorageFootprint, ViewStorage,
};

/// A schema catalog: relation names and their column lists. (Alias of [`Database`]; a
/// catalog is simply a database whose contents are ignored.)
pub type Catalog = Database;

/// Any error that can occur while building or driving an [`IncrementalView`].
#[derive(Clone, Debug)]
pub enum Error {
    /// The query text failed to parse.
    Parse(ParseError),
    /// The query could not be compiled to a trigger program.
    Compile(CompileError),
    /// Evaluating a query with the reference evaluator failed (initialization).
    Eval(EvalError),
    /// Applying an update to the compiled program failed.
    Runtime(RuntimeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "{e}"),
            Error::Eval(e) => write!(f, "{e}"),
            Error::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}
impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}
impl From<EvalError> for Error {
    fn from(e: EvalError) -> Self {
        Error::Eval(e)
    }
}
impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

/// A standing aggregate query maintained incrementally by a compiled trigger program.
///
/// Construction parses (if needed), range-checks, compiles and validates the query; after
/// that, every [`IncrementalView::apply`] performs only the constant-work trigger
/// statements of the compiled program — the base relations are not stored.
///
/// The view is generic over the [`ViewStorage`] backend its materialized maps live in,
/// defaulting to [`HashViewStorage`]; pick another backend by naming it —
/// `IncrementalView::<OrderedViewStorage>::with_backend(&catalog, query)` — or go
/// through the runtime-selected strategy registry ([`strategy_by_name`]).
#[derive(Clone, Debug)]
pub struct IncrementalView<S: ViewStorage = HashViewStorage> {
    query: Query,
    executor: Executor<S>,
}

impl IncrementalView<HashViewStorage> {
    /// Builds a view from an already-parsed AGCA [`Query`] on the default hash backend.
    pub fn new(catalog: &Catalog, query: Query) -> Result<Self, Error> {
        Self::with_backend(catalog, query)
    }

    /// Builds a view from a SQL aggregate query (the Section 5 SQL subset).
    pub fn from_sql(catalog: &Catalog, sql: &str) -> Result<Self, Error> {
        Self::from_sql_with_backend(catalog, sql)
    }

    /// Builds a view from the AGCA text syntax, e.g.
    /// `"q[c] := Sum(C(c, n) * C(c2, n))"`.
    pub fn from_agca(catalog: &Catalog, text: &str) -> Result<Self, Error> {
        Self::from_agca_with_backend(catalog, text)
    }
}

impl<S: ViewStorage> IncrementalView<S> {
    /// Builds a view from an already-parsed AGCA [`Query`] on the storage backend named
    /// by the type parameter, e.g. `IncrementalView::<OrderedViewStorage>::with_backend`.
    pub fn with_backend(catalog: &Catalog, query: Query) -> Result<Self, Error> {
        let program = compile(catalog, &query)?;
        Ok(IncrementalView {
            query,
            executor: Executor::with_backend(program),
        })
    }

    /// Builds a view from a SQL aggregate query on an explicitly named storage backend.
    pub fn from_sql_with_backend(catalog: &Catalog, sql: &str) -> Result<Self, Error> {
        let query = parse_sql(sql, catalog)?;
        Self::with_backend(catalog, query)
    }

    /// Builds a view from the AGCA text syntax on an explicitly named storage backend.
    pub fn from_agca_with_backend(catalog: &Catalog, text: &str) -> Result<Self, Error> {
        let query = parse_query(text)?;
        Self::with_backend(catalog, query)
    }

    /// Initializes all materialized views from an existing (non-empty) database. Call this
    /// once, before streaming updates, when the view does not start from scratch.
    pub fn with_initial_database(mut self, db: &Database) -> Result<Self, Error> {
        self.executor.initialize_from(db)?;
        Ok(self)
    }

    /// The query this view maintains.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The compiled trigger program (inspect with [`TriggerProgram::describe`]).
    pub fn program(&self) -> &TriggerProgram {
        self.executor.program()
    }

    /// The program rendered in the paper's low-level NC0C language (a C-like listing of
    /// map declarations and trigger functions), for inspection or embedding elsewhere.
    pub fn nc0c_source(&self) -> String {
        generate_nc0c(self.program())
    }

    /// Applies one single-tuple update.
    pub fn apply(&mut self, update: &Update) -> Result<(), Error> {
        self.executor.apply(update)?;
        Ok(())
    }

    /// Applies a sequence of updates, one trigger firing per single-tuple update.
    ///
    /// **Not atomic:** a failure leaves every update *before* the failing one applied;
    /// the wrapped [`RuntimeError::AtUpdate`] carries the failing update's index so
    /// callers know how many landed.
    pub fn apply_all<'a>(
        &mut self,
        updates: impl IntoIterator<Item = &'a Update>,
    ) -> Result<(), Error> {
        self.executor.apply_all(updates)?;
        Ok(())
    }

    /// Applies a batch of updates as one consolidated [`DeltaBatch`]: multiplicities of
    /// identical tuples are netted out (cancelling pairs never fire), and each
    /// `(relation, sign)` group drives its trigger with one dispatch and — where the
    /// delta is degree ≤ 1 in the updated relation — one weighted firing per distinct
    /// tuple, with the writes applied to each affected map in one sorted pass.
    ///
    /// The result is identical to [`IncrementalView::apply_all`] over the same updates
    /// (in any order); for batches of more than a handful of updates it is faster —
    /// see the `batch_crossover` bench and `EXPERIMENTS.md` for the crossover point.
    /// Like `apply_all`, not atomic on error.
    pub fn apply_batch(&mut self, updates: &[Update]) -> Result<(), Error> {
        self.executor
            .apply_batch(&DeltaBatch::from_updates(updates))?;
        Ok(())
    }

    /// Applies an already-normalized delta batch (the allocation of
    /// [`DeltaBatch::from_updates`] can then be reused or amortized by the caller).
    pub fn apply_delta_batch(&mut self, batch: &DeltaBatch) -> Result<(), Error> {
        self.executor.apply_batch(batch)?;
        Ok(())
    }

    /// Convenience: applies the insertion `+R(values)`.
    pub fn insert(&mut self, relation: &str, values: Vec<Value>) -> Result<(), Error> {
        self.apply(&Update::insert(relation, values))
    }

    /// Convenience: applies the deletion `−R(values)`.
    pub fn delete(&mut self, relation: &str, values: Vec<Value>) -> Result<(), Error> {
        self.apply(&Update::delete(relation, values))
    }

    /// The aggregate value for one group key (the empty slice for queries without
    /// `GROUP BY`). Missing groups read as zero.
    pub fn value(&self, group_key: &[Value]) -> Number {
        self.executor.output_value(group_key)
    }

    /// The full result table, sorted by group key.
    pub fn table(&self) -> BTreeMap<Vec<Value>, Number> {
        self.executor.output_table()
    }

    /// Work counters (updates applied, ring additions/multiplications performed).
    pub fn stats(&self) -> ExecStats {
        self.executor.stats()
    }

    /// Total number of entries across the whole view hierarchy (memory footprint).
    pub fn total_entries(&self) -> usize {
        self.executor.total_entries()
    }

    /// The storage-level memory proxy of the whole view hierarchy: entry and
    /// secondary-index-entry counts (comparable across storage backends).
    pub fn storage_footprint(&self) -> StorageFootprint {
        self.executor.storage_footprint()
    }

    /// Borrows the underlying executor (for experiments needing map-level access).
    pub fn executor(&self) -> &Executor<S> {
        &self.executor
    }

    /// Mutably borrows the underlying executor.
    pub fn executor_mut(&mut self) -> &mut Executor<S> {
        &mut self.executor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("C", &["cid", "nation"]).unwrap();
        c
    }

    #[test]
    fn sql_and_agca_constructors_agree() {
        let catalog = customer_catalog();
        let mut via_sql = IncrementalView::from_sql(
            &catalog,
            "SELECT C1.cid, SUM(1) FROM C C1, C C2 WHERE C1.nation = C2.nation GROUP BY C1.cid",
        )
        .unwrap();
        let mut via_agca =
            IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        for i in 0..20 {
            let u = Update::insert(
                "C",
                vec![Value::int(i), Value::str(["FR", "DE"][(i % 2) as usize])],
            );
            via_sql.apply(&u).unwrap();
            via_agca.apply(&u).unwrap();
        }
        assert_eq!(via_sql.table(), via_agca.table());
        assert_eq!(via_sql.value(&[Value::int(0)]), Number::Int(10));
    }

    #[test]
    fn initialization_from_existing_database() {
        let catalog = customer_catalog();
        let mut db = catalog.clone();
        db.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        db.insert("C", vec![Value::int(2), Value::str("FR")])
            .unwrap();
        let view = IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))")
            .unwrap()
            .with_initial_database(&db)
            .unwrap();
        assert_eq!(view.value(&[Value::int(1)]), Number::Int(2));
        assert_eq!(view.table().len(), 2);
        assert!(view.total_entries() >= 2);
    }

    #[test]
    fn errors_are_propagated_and_displayed() {
        let catalog = customer_catalog();
        assert!(matches!(
            IncrementalView::from_sql(&catalog, "SELECT nope FROM C"),
            Err(Error::Parse(_))
        ));
        assert!(matches!(
            IncrementalView::from_agca(&catalog, "q := Sum(Z(x))"),
            Err(Error::Compile(_))
        ));
        let err = IncrementalView::from_agca(&catalog, "q := Sum(Z(x))").unwrap_err();
        assert!(err.to_string().contains("Z"));
        let mut view = IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n))").unwrap();
        assert!(matches!(
            view.insert("C", vec![Value::int(1)]),
            Err(Error::Runtime(_))
        ));
    }

    #[test]
    fn ordered_backend_views_agree_with_the_default() {
        let catalog = customer_catalog();
        let text = "q[c] := Sum(C(c, n) * C(c2, n))";
        let mut hash = IncrementalView::from_agca(&catalog, text).unwrap();
        let mut ordered =
            IncrementalView::<OrderedViewStorage>::from_agca_with_backend(&catalog, text).unwrap();
        for i in 0..24 {
            let u = Update::insert(
                "C",
                vec![
                    Value::int(i),
                    Value::str(["FR", "DE", "IT"][(i % 3) as usize]),
                ],
            );
            hash.apply(&u).unwrap();
            ordered.apply(&u).unwrap();
        }
        assert_eq!(hash.table(), ordered.table());
        assert_eq!(hash.stats(), ordered.stats());
        assert_eq!(
            hash.storage_footprint().entries,
            ordered.storage_footprint().entries
        );
        // The ordered backend serves prefix patterns from its primary sort order, so it
        // never carries more index entries than the hash backend.
        assert!(
            ordered.storage_footprint().index_entries <= hash.storage_footprint().index_entries
        );
        // Runtime-selected spelling of the same pair.
        let program = compile(&catalog, &parse_query(text).unwrap()).unwrap();
        let strategy = strategy_by_name("recursive-ivm@ordered", program).unwrap();
        assert_eq!(strategy.strategy_name(), "recursive-ivm@ordered");
    }

    #[test]
    fn apply_batch_matches_apply_all_and_apply_all_reports_the_failing_index() {
        let catalog = customer_catalog();
        let text = "q[c] := Sum(C(c, n) * C(c2, n))";
        let updates: Vec<Update> = (0..18)
            .map(|i| {
                Update::insert(
                    "C",
                    vec![
                        Value::int(i % 6),
                        Value::str(["FR", "DE", "IT"][(i % 3) as usize]),
                    ],
                )
            })
            .collect();
        let mut per_tuple = IncrementalView::from_agca(&catalog, text).unwrap();
        per_tuple.apply_all(&updates).unwrap();
        let mut batched = IncrementalView::from_agca(&catalog, text).unwrap();
        batched.apply_batch(&updates).unwrap();
        assert_eq!(per_tuple.table(), batched.table());
        // The pre-normalized entry point behaves identically.
        let mut prebuilt = IncrementalView::from_agca(&catalog, text).unwrap();
        prebuilt
            .apply_delta_batch(&DeltaBatch::from_updates(&updates))
            .unwrap();
        assert_eq!(per_tuple.table(), prebuilt.table());
        // apply_all is not atomic; the error pinpoints the failing update.
        let mut view = IncrementalView::from_agca(&catalog, text).unwrap();
        let bad = vec![
            Update::insert("C", vec![Value::int(1), Value::str("FR")]),
            Update::insert("C", vec![Value::int(2)]),
        ];
        let err = view.apply_all(&bad).unwrap_err();
        assert!(matches!(
            err,
            Error::Runtime(RuntimeError::AtUpdate { index: 1, .. })
        ));
        assert_eq!(view.stats().updates, 1);
    }

    #[test]
    fn accessors_expose_query_program_and_stats() {
        let catalog = customer_catalog();
        let mut view =
            IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        assert_eq!(view.query().group_by, vec!["c"]);
        assert!(view.program().describe().contains("on +C"));
        assert!(view.nc0c_source().contains("void on_insert_C"));
        view.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        assert_eq!(view.stats().updates, 1);
        assert!(view.executor().total_entries() > 0);
        view.executor_mut().reset_stats();
        assert_eq!(view.stats().updates, 0);
    }
}
