//! # dbring — incremental query evaluation in a ring of databases
//!
//! A from-scratch Rust reproduction of Christoph Koch's *Incremental Query Evaluation in a
//! Ring of Databases* (PODS 2010): the ring of generalized multiset relations, the AGCA
//! aggregate query calculus, recursive delta processing, and a compiler that turns
//! aggregate queries into trigger programs which maintain the query result with a
//! **constant number of arithmetic operations per maintained value per single-tuple
//! update** — no joins, no aggregation operators, no access to the base relations.
//!
//! ## Quick start: a [`Ring`] of standing views
//!
//! The engine object is a [`Ring`]: one catalog, any number of standing views, one
//! ingest path. Updates are validated and normalized **once** and routed only to the
//! views that read the touched relations.
//!
//! ```
//! use dbring::{Catalog, RingBuilder, Value, ViewDef};
//!
//! // Declare the schema and build the engine.
//! let mut catalog = Catalog::new();
//! catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
//! let mut ring = RingBuilder::new(catalog).build();
//!
//! // Any number of standing views over the same stream (SQL subset or AGCA syntax).
//! let revenue = ring.create_view(
//!     "revenue",
//!     ViewDef::Sql("SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust"),
//! ).unwrap();
//! let orders = ring.create_view(
//!     "orders",
//!     ViewDef::Sql("SELECT cust, SUM(1) AS orders FROM Sales GROUP BY cust"),
//! ).unwrap();
//!
//! // One stream of single-tuple updates; every view stays fresh after each change.
//! ring.insert("Sales", vec![Value::int(1), Value::float(9.5), Value::int(3)]).unwrap();
//! ring.insert("Sales", vec![Value::int(1), Value::float(0.5), Value::int(1)]).unwrap();
//! ring.delete("Sales", vec![Value::int(1), Value::float(0.5), Value::int(1)]).unwrap();
//!
//! assert_eq!(ring.view(revenue).unwrap().value(&[Value::int(1)]).as_f64(), 28.5);
//! assert_eq!(ring.view(orders).unwrap().value(&[Value::int(1)]).as_f64(), 1.0);
//!
//! // Views can be created mid-stream (backfilled from the ring's base snapshot)…
//! let qty = ring.create_view(
//!     "qty",
//!     ViewDef::Sql("SELECT cust, SUM(qty) AS qty FROM Sales GROUP BY cust"),
//! ).unwrap();
//! assert_eq!(ring.view(qty).unwrap().value(&[Value::int(1)]).as_f64(), 3.0);
//! // …and dropped when no longer needed.
//! ring.drop_view(orders).unwrap();
//! ```
//!
//! Batched ingest goes through [`Ring::apply_batch`]: the batch is consolidated into a
//! [`DeltaBatch`] once for the whole ring — with `k` views that is one normalization
//! where `k` independent views would each redo it (see `EXPERIMENTS.md`, E11).
//!
//! ## Single-view use: [`IncrementalView`]
//!
//! When one query is all you need, [`IncrementalView`] wraps a one-view ring behind
//! the original single-view API (and is the cheapest configuration: it disables
//! base-snapshot tracking, so nothing but the view's own maps is stored):
//!
//! ```
//! use dbring::{Catalog, IncrementalView, Value};
//!
//! let mut catalog = Catalog::new();
//! catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
//! let mut revenue = IncrementalView::from_sql(
//!     &catalog,
//!     "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
//! )
//! .unwrap();
//! revenue.insert("Sales", vec![Value::int(1), Value::float(9.5), Value::int(3)]).unwrap();
//! assert_eq!(revenue.value(&[Value::int(1)]).as_f64(), 28.5);
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | paper section |
//! |---|---|---|
//! | abstract algebra (monoid/avalanche rings, polynomials, recursive memoization) | `dbring-algebra` | §1.1, §2 |
//! | generalized multiset relations, databases, updates | `dbring-relations` | §3 |
//! | the AGCA calculus: AST, parsers, evaluator, normalization, factorization | `dbring-agca` | §4–5 |
//! | the delta transform and delta hierarchies | `dbring-delta` | §6 |
//! | the NC0C trigger IR and the recursive IVM compiler | `dbring-compiler` | §7 |
//! | the trigger executor, engine hosting, op counting, baselines | `dbring-runtime` | §1.1, §7 |
//!
//! This facade re-exports the pieces most users need and adds the [`Ring`] engine and
//! the single-view [`IncrementalView`] wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;

pub use dbring_agca::ast::{CmpOp, Expr, Query};
pub use dbring_agca::eval::{eval, eval_all_groups, EvalError};
pub use dbring_agca::parser::{parse_expr, parse_query, ParseError};
pub use dbring_agca::safety::SafetyError;
pub use dbring_agca::sql::parse_sql;
pub use dbring_algebra::{Number, Polynomial, RecursiveMemo, Ring as AlgebraicRing, Semiring};
pub use dbring_compiler::{
    analyze, analyze_plan, analyze_program, audit_program, compile, generate_nc0c, has_errors,
    lower, CompileError, DiagCode, Diagnostic, ExecPlan, LowerError, PlanOp, PlanStatement,
    PlanTrigger, Severity, Slot, SlotExpr, TriggerProgram, UnboundKey,
};
pub use dbring_delta::{delta, Sign, UpdateEvent};
pub use dbring_relations::{
    BatchNormalizer, Database, DeltaBatch, DeltaGroup, Gmr, IVal, Interner, KeyPool, Tuple, Update,
    Value,
};
pub use dbring_runtime::fault;
pub use dbring_runtime::{
    boxed_engine, boxed_engine_by_name, interpreted_ivm, recursive_ivm, strategy_by_name,
    try_boxed_engine, ClassicalIvm, EngineRegistry, ExecStats, Executor, FaultOp, FaultPlan,
    FaultStorage, HashViewStorage, InterpretedExecutor, MaintenanceStrategy, NaiveReeval,
    OrderedViewStorage, ParallelConfig, RuntimeError, SnapshotStore, StagedBatch, StorageBackend,
    StorageFootprint, ViewEngine, ViewSnapshot, ViewStorage,
};

mod ring;

pub use ring::{Ring, RingBuilder, RingHandle, ViewDef, ViewId, ViewMut, ViewRef};

/// A schema catalog: relation names and their column lists. (Alias of [`Database`]; a
/// catalog is simply a database whose contents are ignored — [`RingBuilder::new`] and
/// the [`IncrementalView`] constructors read only its declarations. To start an engine
/// from loaded *data*, say so explicitly with [`RingBuilder::from_database`].)
pub type Catalog = Database;

/// Any error that can occur while building or driving a [`Ring`] or
/// [`IncrementalView`].
///
/// The wrapping variants ([`Error::Parse`], [`Error::Compile`], [`Error::Eval`],
/// [`Error::Runtime`]) expose the wrapped failure through
/// [`std::error::Error::source`], so error reporters can walk the full chain.
#[derive(Clone, Debug)]
pub enum Error {
    /// The query text failed to parse.
    Parse(ParseError),
    /// The query could not be compiled to a trigger program.
    Compile(CompileError),
    /// Evaluating a query with the reference evaluator failed (initialization).
    Eval(EvalError),
    /// Applying an update to a compiled program failed.
    Runtime(RuntimeError),
    /// A view id or name addressed no live view of the ring (it may have been
    /// dropped; ids are never reused).
    UnknownView {
        /// The id (`view#3`) or name that failed to resolve.
        view: String,
    },
    /// A view with this name already lives on the ring (dropping a view frees its
    /// name).
    DuplicateView {
        /// The contested name.
        name: String,
    },
    /// A relation was not declared in the ring's catalog — raised eagerly by
    /// [`Ring::create_view`] for queries over undeclared relations (instead of a late
    /// compile error) and by the ring's ingest path for updates to undeclared
    /// relations.
    UnknownRelation {
        /// The undeclared relation.
        relation: String,
        /// The view whose definition referenced it (`None` when raised by ingest).
        view: Option<String>,
    },
    /// A view was created after updates were ingested on a ring built
    /// [`without_base_tracking`](RingBuilder::without_base_tracking): there is no
    /// current snapshot to backfill it from.
    BackfillUnavailable {
        /// The view that could not be created.
        view: String,
    },
    /// The view's engine panicked during ingest and was quarantined: its tables can
    /// no longer be trusted, so reads refuse to serve them and ingest skips the view.
    /// [`Ring::repair_view`] rebuilds it from the base snapshot.
    ViewPoisoned {
        /// The quarantined view's name.
        view: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "{e}"),
            Error::Eval(e) => write!(f, "{e}"),
            Error::Runtime(e) => write!(f, "{e}"),
            Error::UnknownView { view } => write!(f, "no live view {view} on this ring"),
            Error::DuplicateView { name } => {
                write!(f, "a view named {name} already exists on this ring")
            }
            Error::UnknownRelation {
                relation,
                view: Some(view),
            } => write!(
                f,
                "view {view} reads relation {relation}, which the ring's catalog never declared"
            ),
            Error::UnknownRelation {
                relation,
                view: None,
            } => write!(
                f,
                "update targets relation {relation}, which the ring's catalog never declared"
            ),
            Error::BackfillUnavailable { view } => write!(
                f,
                "cannot create view {view}: base-snapshot tracking is disabled and updates \
                 were already ingested, so there is nothing to backfill it from"
            ),
            Error::ViewPoisoned { view } => write!(
                f,
                "view {view} is quarantined: its engine panicked during ingest, so its \
                 tables cannot be trusted until Ring::repair_view rebuilds it"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::Eval(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::UnknownView { .. }
            | Error::DuplicateView { .. }
            | Error::UnknownRelation { .. }
            | Error::BackfillUnavailable { .. }
            | Error::ViewPoisoned { .. } => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}
impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}
impl From<EvalError> for Error {
    fn from(e: EvalError) -> Self {
        Error::Eval(e)
    }
}
impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

/// A standing aggregate query maintained incrementally by a compiled trigger program —
/// the single-view facade, implemented as a thin wrapper over a one-view [`Ring`].
///
/// Construction parses (if needed), range-checks, compiles and validates the query; after
/// that, every [`IncrementalView::apply`] performs only the constant-work trigger
/// statements of the compiled program. The wrapper's ring runs
/// [`without_base_tracking`](RingBuilder::without_base_tracking), so — unlike a default
/// `Ring` — the base relations are **not** stored: the view's materialized maps are the
/// only state, exactly as before.
///
/// The view is generic over the [`ViewStorage`] backend its materialized maps live in,
/// defaulting to [`HashViewStorage`]; pick another backend by naming it —
/// `IncrementalView::<OrderedViewStorage>::with_backend(&catalog, query)` — or choose
/// one at runtime by value through [`Ring`]/[`RingBuilder::backend`] or the registries
/// ([`strategy_by_name`], [`boxed_engine`]).
///
/// Ingest semantics kept from the pre-`Ring` facade: updates to relations the query
/// does not read are ignored (a multi-view [`Ring`] instead validates every update
/// against its catalog).
#[derive(Clone, Debug)]
pub struct IncrementalView<S: ViewStorage = HashViewStorage> {
    ring: Ring,
    id: ViewId,
    _backend: PhantomData<S>,
}

impl IncrementalView<HashViewStorage> {
    /// Builds a view from an already-parsed AGCA [`Query`] on the default hash backend.
    pub fn new(catalog: &Catalog, query: Query) -> Result<Self, Error> {
        Self::with_backend(catalog, query)
    }

    /// Builds a view from a SQL aggregate query (the Section 5 SQL subset).
    pub fn from_sql(catalog: &Catalog, sql: &str) -> Result<Self, Error> {
        Self::from_sql_with_backend(catalog, sql)
    }

    /// Builds a view from the AGCA text syntax, e.g.
    /// `"q[c] := Sum(C(c, n) * C(c2, n))"`.
    pub fn from_agca(catalog: &Catalog, text: &str) -> Result<Self, Error> {
        Self::from_agca_with_backend(catalog, text)
    }
}

impl<S: ViewStorage + Send + 'static> IncrementalView<S> {
    /// Builds a view from an already-parsed AGCA [`Query`] on the storage backend named
    /// by the type parameter, e.g. `IncrementalView::<OrderedViewStorage>::with_backend`.
    /// Any `Send + 'static` [`ViewStorage`] implementation works here (the bounds the
    /// hosting ring's boxed-engine interface requires) — the facade hosts a genuinely
    /// typed `Executor<S>` behind its one-view ring, so `S` is not limited to the
    /// backends the [`StorageBackend`] enum can name.
    pub fn with_backend(catalog: &Catalog, query: Query) -> Result<Self, Error> {
        // Only the declarations travel (contents are ignored by contract), so clone
        // the schema, never the data a loaded database-as-catalog might carry.
        let mut ring = RingBuilder::new(catalog.schema_only())
            .without_base_tracking()
            .build();
        let name = query.name.clone();
        let id = ring.create_view_hosted(name, ViewDef::Query(query), |program| {
            Box::new(Executor::<S>::with_backend(program))
        })?;
        Ok(IncrementalView {
            ring,
            id,
            _backend: PhantomData,
        })
    }

    /// Builds a view from a SQL aggregate query on an explicitly named storage backend.
    pub fn from_sql_with_backend(catalog: &Catalog, sql: &str) -> Result<Self, Error> {
        let query = parse_sql(sql, catalog)?;
        Self::with_backend(catalog, query)
    }

    /// Builds a view from the AGCA text syntax on an explicitly named storage backend.
    pub fn from_agca_with_backend(catalog: &Catalog, text: &str) -> Result<Self, Error> {
        let query = parse_query(text)?;
        Self::with_backend(catalog, query)
    }

    /// Initializes all materialized views from an existing (non-empty) database. Call this
    /// once, before streaming updates, when the view does not start from scratch.
    pub fn with_initial_database(mut self, db: &Database) -> Result<Self, Error> {
        self.ring.reinitialize_view_from(self.id, db)?;
        Ok(self)
    }

    /// The query this view maintains.
    pub fn query(&self) -> &Query {
        self.ring.query_unchecked(self.id)
    }

    /// The compiled trigger program (inspect with [`TriggerProgram::describe`]).
    pub fn program(&self) -> &TriggerProgram {
        self.ring.engine_unchecked(self.id).program()
    }

    /// The program rendered in the paper's low-level NC0C language (a C-like listing of
    /// map declarations and trigger functions), for inspection or embedding elsewhere.
    pub fn nc0c_source(&self) -> String {
        generate_nc0c(self.program())
    }

    /// Applies one single-tuple update. Updates to relations the query does not read
    /// are ignored.
    ///
    /// Ingest delegates straight to the typed executor (the wrapper ring does no
    /// catalog validation, no routing and no snapshot maintenance), so both the hot
    /// path and the error contract are exactly the pre-`Ring` facade's.
    pub fn apply(&mut self, update: &Update) -> Result<(), Error> {
        self.executor_mut().apply(update).map_err(Error::Runtime)
    }

    /// Applies a sequence of updates, one trigger firing per single-tuple update.
    ///
    /// **Not atomic:** a failure leaves every update *before* the failing one applied;
    /// the wrapped [`RuntimeError::AtUpdate`] carries the failing update's index so
    /// callers know how many landed.
    pub fn apply_all<'a>(
        &mut self,
        updates: impl IntoIterator<Item = &'a Update>,
    ) -> Result<(), Error> {
        self.executor_mut()
            .apply_all(updates)
            .map_err(Error::Runtime)
    }

    /// Applies a batch of updates as one consolidated [`DeltaBatch`]: multiplicities of
    /// identical tuples are netted out (cancelling pairs never fire), and each
    /// `(relation, sign)` group drives its trigger with one dispatch and — where the
    /// delta is degree ≤ 1 in the updated relation — one weighted firing per distinct
    /// tuple, with the writes applied to each affected map in one sorted pass.
    ///
    /// The result is identical to [`IncrementalView::apply_all`] over the same updates
    /// (in any order); for batches of more than a handful of updates it is faster —
    /// see the `batch_crossover` bench and `EXPERIMENTS.md` for the crossover point.
    /// Unlike `apply_all`, a batch is **atomic**: on error the view's tables and
    /// counters are bit-identical to before the call (the executor stages the batch
    /// and commits only on success).
    pub fn apply_batch(&mut self, updates: &[Update]) -> Result<(), Error> {
        // Normalize on the wrapper ring's interned fixed-width scratch (reused across
        // batches), then feed the typed executor directly as before.
        let batch = self.ring.normalize_updates(updates);
        self.apply_delta_batch(&batch)
    }

    /// Applies an already-normalized delta batch (the allocation of
    /// [`DeltaBatch::from_updates`] can then be reused or amortized by the caller).
    pub fn apply_delta_batch(&mut self, batch: &DeltaBatch) -> Result<(), Error> {
        self.executor_mut()
            .apply_batch(batch)
            .map_err(Error::Runtime)
    }

    /// Convenience: applies the insertion `+R(values)`.
    pub fn insert(&mut self, relation: &str, values: Vec<Value>) -> Result<(), Error> {
        self.apply(&Update::insert(relation, values))
    }

    /// Convenience: applies the deletion `−R(values)`.
    pub fn delete(&mut self, relation: &str, values: Vec<Value>) -> Result<(), Error> {
        self.apply(&Update::delete(relation, values))
    }

    /// The aggregate value for one group key (the empty slice for queries without
    /// `GROUP BY`). Missing groups read as zero.
    pub fn value(&self, group_key: &[Value]) -> Number {
        self.ring.engine_unchecked(self.id).output_value(group_key)
    }

    /// The full result table, sorted by group key.
    pub fn table(&self) -> BTreeMap<Vec<Value>, Number> {
        self.ring.engine_unchecked(self.id).output_table()
    }

    /// Work counters (updates applied, ring additions/multiplications performed).
    pub fn stats(&self) -> ExecStats {
        self.ring.engine_unchecked(self.id).stats()
    }

    /// Total number of entries across the whole view hierarchy (memory footprint).
    pub fn total_entries(&self) -> usize {
        self.ring.engine_unchecked(self.id).total_entries()
    }

    /// The storage-level memory proxy of the whole view hierarchy: entry and
    /// secondary-index-entry counts (comparable across storage backends).
    pub fn storage_footprint(&self) -> StorageFootprint {
        self.ring.engine_unchecked(self.id).storage_footprint()
    }

    /// The static plan auditor's diagnostics for this view's compiled program, empty
    /// when the plan lints clean (see [`Ring::audit_view`]). Auditing re-lowers the
    /// program, so treat it as a cold introspection call.
    pub fn audit(&self) -> Vec<Diagnostic> {
        self.ring.engine_unchecked(self.id).audit()
    }

    /// Borrows the underlying executor (for experiments needing map-level access).
    pub fn executor(&self) -> &Executor<S> {
        self.ring
            .engine_unchecked(self.id)
            .as_any()
            .downcast_ref()
            .expect("the facade always hosts a lowered executor on its own backend")
    }

    /// Mutably borrows the underlying executor.
    pub fn executor_mut(&mut self) -> &mut Executor<S> {
        self.ring
            .engine_unchecked_mut(self.id)
            .as_any_mut()
            .downcast_mut()
            .expect("the facade always hosts a lowered executor on its own backend")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("C", &["cid", "nation"]).unwrap();
        c
    }

    #[test]
    fn sql_and_agca_constructors_agree() {
        let catalog = customer_catalog();
        let mut via_sql = IncrementalView::from_sql(
            &catalog,
            "SELECT C1.cid, SUM(1) FROM C C1, C C2 WHERE C1.nation = C2.nation GROUP BY C1.cid",
        )
        .unwrap();
        let mut via_agca =
            IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        for i in 0..20 {
            let u = Update::insert(
                "C",
                vec![Value::int(i), Value::str(["FR", "DE"][(i % 2) as usize])],
            );
            via_sql.apply(&u).unwrap();
            via_agca.apply(&u).unwrap();
        }
        assert_eq!(via_sql.table(), via_agca.table());
        assert_eq!(via_sql.value(&[Value::int(0)]), Number::Int(10));
    }

    #[test]
    fn initialization_from_existing_database() {
        let catalog = customer_catalog();
        let mut db = catalog.clone();
        db.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        db.insert("C", vec![Value::int(2), Value::str("FR")])
            .unwrap();
        let view = IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))")
            .unwrap()
            .with_initial_database(&db)
            .unwrap();
        assert_eq!(view.value(&[Value::int(1)]), Number::Int(2));
        assert_eq!(view.table().len(), 2);
        assert!(view.total_entries() >= 2);
    }

    #[test]
    fn catalog_contents_are_ignored_by_the_single_view_facade() {
        // A loaded database used as a catalog contributes only its schema; the view
        // starts empty unless `with_initial_database` says otherwise.
        let mut db = customer_catalog();
        db.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        let view = IncrementalView::from_agca(&db, "q[c] := Sum(C(c, n))").unwrap();
        assert!(view.table().is_empty());
    }

    #[test]
    fn errors_are_propagated_and_displayed() {
        let catalog = customer_catalog();
        assert!(matches!(
            IncrementalView::from_sql(&catalog, "SELECT nope FROM C"),
            Err(Error::Parse(_))
        ));
        // An undeclared relation is now a dedicated error (the Catalog = Database
        // alias footgun), not a late compile error.
        assert!(matches!(
            IncrementalView::from_agca(&catalog, "q := Sum(Z(x))"),
            Err(Error::UnknownRelation { .. })
        ));
        let err = IncrementalView::from_agca(&catalog, "q := Sum(Z(x))").unwrap_err();
        assert!(err.to_string().contains("Z"));
        // Genuine compile failures still surface as compile errors.
        assert!(matches!(
            IncrementalView::from_agca(&catalog, "q[x] := Sum((x = 1))"),
            Err(Error::Compile(_))
        ));
        let mut view = IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n))").unwrap();
        assert!(matches!(
            view.insert("C", vec![Value::int(1)]),
            Err(Error::Runtime(_))
        ));
    }

    #[test]
    fn error_sources_expose_the_wrapped_failure_chain() {
        use std::error::Error as StdError;
        let catalog = customer_catalog();
        let parse = IncrementalView::from_sql(&catalog, "SELECT nope FROM C").unwrap_err();
        let source = parse.source().expect("parse errors carry a source");
        assert_eq!(source.to_string(), format!("{parse}"));
        let compile = IncrementalView::from_agca(&catalog, "q[x] := Sum((x = 1))").unwrap_err();
        assert!(compile.source().is_some());
        let mut view = IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n))").unwrap();
        let runtime = view.insert("C", vec![Value::int(1)]).unwrap_err();
        let source = runtime.source().expect("runtime errors carry a source");
        assert!(source.to_string().contains("trigger expects"));
        // Structural ring errors have no inner cause.
        let mut ring = RingBuilder::new(customer_catalog()).build();
        let dup = ring
            .create_view("v", ViewDef::Agca("q := Sum(C(c, n))"))
            .unwrap();
        let err = ring
            .create_view("v", ViewDef::Agca("q := Sum(C(c, n))"))
            .unwrap_err();
        assert!(err.source().is_none());
        ring.drop_view(dup).unwrap();
    }

    #[test]
    fn irrelevant_updates_are_ignored_by_the_single_view_facade() {
        // Legacy single-view semantics: relations the query does not read — declared
        // or not — are skipped, unlike the strict multi-view `Ring` ingest path.
        let mut catalog = customer_catalog();
        catalog.declare("Unread", &["x"]).unwrap();
        let mut view = IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n))").unwrap();
        view.insert("Other", vec![Value::int(1)]).unwrap();
        view.insert("Unread", vec![Value::int(1)]).unwrap();
        assert!(view.table().is_empty());
        assert_eq!(view.stats().updates, 0);
    }

    #[test]
    fn ordered_backend_views_agree_with_the_default() {
        let catalog = customer_catalog();
        let text = "q[c] := Sum(C(c, n) * C(c2, n))";
        let mut hash = IncrementalView::from_agca(&catalog, text).unwrap();
        let mut ordered =
            IncrementalView::<OrderedViewStorage>::from_agca_with_backend(&catalog, text).unwrap();
        for i in 0..24 {
            let u = Update::insert(
                "C",
                vec![
                    Value::int(i),
                    Value::str(["FR", "DE", "IT"][(i % 3) as usize]),
                ],
            );
            hash.apply(&u).unwrap();
            ordered.apply(&u).unwrap();
        }
        assert_eq!(hash.table(), ordered.table());
        assert_eq!(hash.stats(), ordered.stats());
        assert_eq!(
            hash.storage_footprint().entries,
            ordered.storage_footprint().entries
        );
        // The ordered backend serves prefix patterns from its primary sort order, so it
        // never carries more index entries than the hash backend.
        assert!(
            ordered.storage_footprint().index_entries <= hash.storage_footprint().index_entries
        );
        // Runtime-selected spelling of the same pair.
        let program = compile(&catalog, &parse_query(text).unwrap()).unwrap();
        let strategy = strategy_by_name("recursive-ivm@ordered", program).unwrap();
        assert_eq!(strategy.strategy_name(), "recursive-ivm@ordered");
    }

    #[test]
    fn apply_batch_matches_apply_all_and_apply_all_reports_the_failing_index() {
        let catalog = customer_catalog();
        let text = "q[c] := Sum(C(c, n) * C(c2, n))";
        let updates: Vec<Update> = (0..18)
            .map(|i| {
                Update::insert(
                    "C",
                    vec![
                        Value::int(i % 6),
                        Value::str(["FR", "DE", "IT"][(i % 3) as usize]),
                    ],
                )
            })
            .collect();
        let mut per_tuple = IncrementalView::from_agca(&catalog, text).unwrap();
        per_tuple.apply_all(&updates).unwrap();
        let mut batched = IncrementalView::from_agca(&catalog, text).unwrap();
        batched.apply_batch(&updates).unwrap();
        assert_eq!(per_tuple.table(), batched.table());
        // The pre-normalized entry point behaves identically.
        let mut prebuilt = IncrementalView::from_agca(&catalog, text).unwrap();
        prebuilt
            .apply_delta_batch(&DeltaBatch::from_updates(&updates))
            .unwrap();
        assert_eq!(per_tuple.table(), prebuilt.table());
        // apply_all is not atomic; the error pinpoints the failing update.
        let mut view = IncrementalView::from_agca(&catalog, text).unwrap();
        let bad = vec![
            Update::insert("C", vec![Value::int(1), Value::str("FR")]),
            Update::insert("C", vec![Value::int(2)]),
        ];
        let err = view.apply_all(&bad).unwrap_err();
        assert!(matches!(
            err,
            Error::Runtime(RuntimeError::AtUpdate { index: 1, .. })
        ));
        assert_eq!(view.stats().updates, 1);
    }

    #[test]
    fn accessors_expose_query_program_and_stats() {
        let catalog = customer_catalog();
        let mut view =
            IncrementalView::from_agca(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        assert_eq!(view.query().group_by, vec!["c"]);
        assert!(view.program().describe().contains("on +C"));
        assert!(view.nc0c_source().contains("void on_insert_C"));
        view.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        assert_eq!(view.stats().updates, 1);
        assert!(view.executor().total_entries() > 0);
        view.executor_mut().reset_stats();
        assert_eq!(view.stats().updates, 0);
    }

    /// Regression (review finding): the facade must host a genuinely typed
    /// `Executor<S>` for *any* `ViewStorage` implementation — including ones the
    /// `StorageBackend` enum cannot name — not silently substitute a built-in
    /// backend and panic on `executor()`.
    #[test]
    fn the_facade_honors_custom_storage_backends() {
        use dbring_algebra::Number as N;

        /// A delegating wrapper around the hash backend: a distinct *type* the enum
        /// has no value for, standing in for an out-of-tree backend.
        #[derive(Clone, Debug)]
        struct CustomStorage(HashViewStorage);

        impl ViewStorage for CustomStorage {
            const BACKEND: StorageBackend = StorageBackend::Hash; // closest name
            fn new(key_arity: usize) -> Self {
                CustomStorage(HashViewStorage::new(key_arity))
            }
            fn key_arity(&self) -> usize {
                self.0.key_arity()
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn get(&self, key: &[Value]) -> N {
                self.0.get(key)
            }
            fn add(&mut self, key: Vec<Value>, delta: N) {
                self.0.add(key, delta)
            }
            fn add_ref(&mut self, key: &[Value], delta: N) {
                self.0.add_ref(key, delta)
            }
            fn register_index(&mut self, positions: Vec<usize>) {
                self.0.register_index(positions)
            }
            fn for_each(&self, visit: impl FnMut(&[Value], N)) {
                self.0.for_each(visit)
            }
            fn for_each_slice(
                &self,
                positions: &[usize],
                values: &[Value],
                visit: impl FnMut(&[Value], N),
            ) {
                self.0.for_each_slice(positions, values, visit)
            }
            fn footprint(&self) -> StorageFootprint {
                self.0.footprint()
            }
        }

        let catalog = customer_catalog();
        let mut view = IncrementalView::<CustomStorage>::from_agca_with_backend(
            &catalog,
            "q[c] := Sum(C(c, n))",
        )
        .unwrap();
        view.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        assert_eq!(view.value(&[Value::int(1)]), Number::Int(1));
        // The hosted executor really runs on the custom type: the typed accessor
        // succeeds rather than panicking on a mismatched downcast.
        let typed: &Executor<CustomStorage> = view.executor();
        assert_eq!(typed.output_value(&[Value::int(1)]), Number::Int(1));
    }

    #[test]
    fn the_facade_downcasts_to_its_typed_executor_on_both_backends() {
        let catalog = customer_catalog();
        let text = "q[c] := Sum(C(c, n))";
        let mut hash = IncrementalView::from_agca(&catalog, text).unwrap();
        hash.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        let _typed: &Executor<HashViewStorage> = hash.executor();
        let mut ordered =
            IncrementalView::<OrderedViewStorage>::from_agca_with_backend(&catalog, text).unwrap();
        ordered
            .insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        let typed: &Executor<OrderedViewStorage> = ordered.executor();
        assert_eq!(typed.output_value(&[Value::int(1)]), Number::Int(1));
        // Clones stay independent (the boxed engine clones behind the ring).
        let fork = ordered.clone();
        ordered
            .insert("C", vec![Value::int(2), Value::str("DE")])
            .unwrap();
        assert_eq!(fork.table().len(), 1);
        assert_eq!(ordered.table().len(), 2);
    }
}
